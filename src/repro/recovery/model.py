"""Shared machinery of all recovery mechanisms: cost model, context, results.

The :class:`CostModel` holds the calibrated constants of the simulation —
merge throughput, per-shard and per-stage setup costs, detection delay —
chosen so the *shape* of every figure in the paper's evaluation holds
(which mechanism wins in which regime, where the crossovers fall). The
absolute constants are documented here and in DESIGN.md; benchmarks assert
orderings, never absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.dht.node import DhtNode
from repro.dht.overlay import Overlay
from repro.errors import RecoveryError
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.resources import ResourceProfile
from repro.util.sizes import MB


@dataclass(frozen=True)
class CostModel:
    """Calibrated constants of the recovery simulation.

    Rates are bytes/second, delays are seconds. Defaults are calibrated so
    that, with GbE links and a 100 Mb/s constrained mode, the Fig. 8/9/10
    orderings reproduce (see ``benchmarks/``).
    """

    # Failure detection before any mechanism starts moving data.
    detection_delay: float = 1.0
    # Hash-table merge throughput when reconstructing state from shards.
    merge_rate: float = 12.5 * MB
    # Installing an already-merged state image into the replacement store.
    install_rate: float = 100.0 * MB
    # Partitioning a snapshot into shards during save.
    partition_rate: float = 50.0 * MB
    # Fixed cost per shard fetched in star recovery (request/queue setup).
    shard_setup: float = 0.05
    # Fixed cost per line stage (chain handoff and coordination).
    stage_setup: float = 0.08
    # Line recovery recomputes the accumulated prefix at every stage — the
    # "redundant calculations in their state recovery paths" of Sec. 5.2.
    # Each stage pays ``redundant_factor * accumulated_bytes / merge_rate``.
    line_redundant_factor: float = 0.06
    # Fixed cost per tree level (parent waits, merge scheduling).
    level_setup: float = 0.05
    # Building/subscribing the per-shard Scribe aggregation trees.
    tree_build_base: float = 2.4
    tree_build_per_member: float = 0.02
    # Tree aggregation merges concatenate disjoint key ranges, which is
    # cheaper than hash-table merging; it runs at the install rate.
    # Fixed cost to write one shard replica during save (request overhead).
    replica_write_overhead: float = 0.4
    # Extra routing/lookup cost to locate an alternate replica after a
    # shard loss (Fig. 10's slight growth with simultaneous failures).
    replica_lookup_overhead: float = 0.25
    # Chain-aware recovery: fixed coordination cost per delta link replayed
    # (version handshake, tombstone pass scheduling)...
    chain_link_setup: float = 0.03
    # ...and delta replay runs slower than a base merge per byte: upserts
    # hit existing buckets and tombstones force lookups, so each delta byte
    # costs ``delta_replay_factor`` base-merge bytes.
    delta_replay_factor: float = 1.2
    # Hot-standby tier (the StreamShield-style fourth tier): the warm
    # replica keeps a dedicated heartbeat session with the primary, so it
    # notices the failure after only a fraction of the DHT-wide detector
    # delay...
    standby_detection_factor: float = 0.25
    # ...and takeover is an ownership flip (routing update + store
    # promotion, no bulk movement)...
    standby_flip: float = 0.05
    # ...plus replay of the delta tail the standby had not folded into its
    # warm image yet: this fraction of the chain's delta payload.
    standby_lag_fraction: float = 0.1
    # CPU fraction a node spends while actively merging (Fig. 12a).
    merge_cpu_fraction: float = 0.75
    # CPU fraction spent while sending/receiving a bulk flow.
    transfer_cpu_fraction: float = 0.15
    # Memory multiplier for recovery buffers (bytes held per byte merged).
    buffer_memory_factor: float = 1.3

    def merge_time(self, nbytes: float) -> float:
        return nbytes / self.merge_rate

    def install_time(self, nbytes: float) -> float:
        return nbytes / self.install_rate

    def partition_time(self, nbytes: float) -> float:
        return nbytes / self.partition_rate

    def replay_time(self, delta_bytes: float, num_deltas: int) -> float:
        """Time to replay ``num_deltas`` delta links totalling ``delta_bytes``.

        Zero for chain-free recoveries, so every existing full-replica
        code path is unchanged by the chain terms.
        """
        if num_deltas <= 0:
            return 0.0
        return (
            self.chain_link_setup * num_deltas
            + self.delta_replay_factor * delta_bytes / self.merge_rate
        )

    def standby_takeover_time(self, delta_bytes: float, chain_links: int) -> float:
        """Post-detection standby takeover: ownership flip + tail replay.

        The warm image already holds the base and every folded delta, so
        only ``standby_lag_fraction`` of the chain's delta payload (the
        unfolded tail) replays at the flip.
        """
        tail = max(0.0, delta_bytes) * self.standby_lag_fraction
        return self.standby_flip + self.replay_time(tail, max(0, chain_links - 1))

    def lookup_penalty(self, num_replicas: int, surviving: int) -> float:
        """DHT lookup cost to find alternate replicas after shard loss.

        Scales with the fraction of replicas lost: a larger replication
        factor leaves more nearby copies, so "a larger replication factor
        can reduce the retrieval time of failed shards" (Sec. 5.2,
        Fig. 10).
        """
        if num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        lost = max(0, num_replicas - surviving)
        return self.replica_lookup_overhead * lost / num_replicas


@dataclass(frozen=True)
class RetryPolicy:
    """How a mechanism reacts when a transfer dies mid-recovery.

    A provider crash (or a partition cutting it off) aborts its flow; the
    mechanism waits ``backoff * 2**attempt`` seconds, re-queries the
    placement plan for a surviving replica, and retries — up to
    ``max_retries`` times per shard before the recovery fails with a
    descriptive error. The exponential backoff lets recoveries ride out
    transient partitions that heal within the retry budget.
    """

    max_retries: int = 5
    backoff: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff <= 0:
            raise ValueError("backoff must be positive")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        return self.backoff * (2 ** attempt)


def replacement_died(mechanism: str, state_name: str, replacement: DhtNode) -> RecoveryError:
    """The error every mechanism raises when its replacement node dies.

    Kept uniform (and a plain :class:`RecoveryError`, never an overlay or
    network internal) so callers can catch it and restart the recovery
    onto a fresh replacement.
    """
    return RecoveryError(
        f"state {state_name!r}: replacement node {replacement.name} died during "
        f"{mechanism} recovery; restart the recovery onto a new replacement"
    )


@dataclass
class RecoveryContext:
    """Everything a mechanism needs to run: sim, network, overlay, costs."""

    sim: Simulator
    network: Network
    overlay: Overlay
    cost_model: CostModel = field(default_factory=CostModel)
    profiles: Dict[str, ResourceProfile] = field(default_factory=dict)

    def profile_for(self, node: DhtNode) -> ResourceProfile:
        """The resource profile of a node, created on first use."""
        if node.name not in self.profiles:
            self.profiles[node.name] = ResourceProfile(
                node.name, baseline_cpu=0.18, baseline_memory=500 * MB
            )
        return self.profiles[node.name]

    def charge_cpu(self, node: DhtNode, start: float, duration: float, fraction: float) -> None:
        if duration > 0:
            self.profile_for(node).add_cpu(start, start + duration, fraction)

    def charge_memory(self, node: DhtNode, start: float, duration: float, nbytes: float) -> None:
        if duration > 0 and nbytes > 0:
            self.profile_for(node).add_memory(start, start + duration, nbytes)


@dataclass
class RecoveryResult:
    """Outcome of one completed recovery."""

    mechanism: str
    state_name: str
    state_bytes: float
    started_at: float
    finished_at: float
    bytes_transferred: float
    nodes_involved: int
    shards_recovered: int
    replacement: str
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class RecoveryHandle:
    """A recovery in flight; resolves to a :class:`RecoveryResult`.

    Mechanisms schedule their event cascade and return a handle; callers
    run the simulator (alone or alongside other concurrent recoveries) and
    then read ``handle.result``.
    """

    def __init__(self, mechanism: str, state_name: str) -> None:
        self.mechanism = mechanism
        self.state_name = state_name
        self._result: Optional[RecoveryResult] = None
        self._error: Optional[Exception] = None
        self._callbacks: List[Callable[[RecoveryResult], None]] = []

    @property
    def done(self) -> bool:
        return self._result is not None or self._error is not None

    @property
    def result(self) -> RecoveryResult:
        if self._error is not None:
            raise self._error
        if self._result is None:
            raise RecoveryError(
                f"recovery of {self.state_name!r} via {self.mechanism} has not finished"
            )
        return self._result

    def on_done(self, callback: Callable[[RecoveryResult], None]) -> None:
        if self._result is not None:
            callback(self._result)
        else:
            self._callbacks.append(callback)

    def _resolve(self, result: RecoveryResult) -> None:
        if self.done:
            raise RecoveryError(f"handle for {self.state_name!r} resolved twice")
        self._result = result
        for callback in self._callbacks:
            callback(result)

    def _fail(self, error: Exception) -> None:
        if self.done:
            raise RecoveryError(f"handle for {self.state_name!r} resolved twice")
        self._error = error


def run_handles(sim: Simulator, handles: List[RecoveryHandle]) -> List[RecoveryResult]:
    """Drive the simulator until every handle resolves; return results."""
    sim.run_until_idle()
    unresolved = [h for h in handles if not h.done]
    if unresolved:
        names = [h.state_name for h in unresolved]
        raise RecoveryError(f"recoveries never completed: {names}")
    return [h.result for h in handles]
