"""Hot-standby recovery: the fourth tier of the spectrum.

Star/line/tree move the state *after* the failure; the hot-standby tier
moves it *before*. A designated standby node keeps a warm image of every
segment (base shards plus the folded delta chain), continuously refreshed
by :func:`sync_standby` after each save round. Takeover is then an
ownership flip plus replay of the delta tail the standby had not folded
yet — no bulk movement on the critical path, so the makespan is dominated
by detection (a dedicated primary↔standby heartbeat, faster than the
DHT-wide detector) rather than transfer.

The price is steady-state cost: the sync traffic shares links with the
application (shuffle bandwidth) and the warm image occupies memory on the
standby for as long as it stands by. Both are surfaced through
``SelectionInputs.standby_refresh_bytes_per_s`` / ``standby_memory_bytes``
so the selection layer can weigh them.

Degradation is graceful: segments the promoted node does not hold locally
(a lagging sync, or the overlay picked a different replacement than the
provisioned standby) are fetched star-style from surviving providers with
the usual retry/backoff machinery, so a "cold" standby recovery is still
correct — just no longer O(flip).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.dht.node import DhtNode
from repro.errors import InsufficientShardsError, RecoveryError
from repro.recovery.model import (
    RecoveryContext,
    RecoveryHandle,
    RecoveryResult,
    RetryPolicy,
    replacement_died,
)
from repro.state.placement import PlacedShard, PlacementPlan
from repro.state.shard import Shard, ShardReplica

# Tag carried by standby sync flows so network telemetry (and tests) can
# tell steady-state provisioning traffic from recovery and app traffic.
STANDBY_TAG = "standby.sync"


class StandbyReplica(ShardReplica):
    """A warm copy held by the standby, outside the normal replica set."""

    standby = True

    def __init__(self, shard: Shard, num_replicas: int) -> None:
        # Slot index ``num_replicas`` in an (n+1)-wide set: distinct key
        # from every regular replica, so the standby copy coexists with a
        # regular replica of the same segment on the same node.
        super().__init__(shard, num_replicas, num_replicas + 1)


def _flat_plans(registered) -> List[PlacementPlan]:
    """The flat placement plans behind a registered state, base first."""
    chain = getattr(registered, "chain", None)
    if chain is not None and chain.links:
        return [link.plan for link in chain.links]
    if registered.plan is None:
        return []
    return [registered.plan]


def _holds_warm(plan: PlacementPlan, index: int, node: DhtNode) -> bool:
    """Does ``node`` hold a live warm copy of segment ``index``?"""
    if not node.alive:
        return False
    for placed in plan.for_shard(index):
        if (
            getattr(placed.replica, "standby", False)
            and placed.node.node_id == node.node_id
            and node.get_shard(placed.replica.key) is not None
        ):
            return True
    return False


def standby_node_of(registered) -> Optional[DhtNode]:
    """The node acting as warm standby for a state, if one is provisioned.

    The node holding the most live standby-flagged segment copies wins;
    ties break by name for determinism. ``None`` when nothing is warm.
    """
    held: Dict[str, Tuple[int, DhtNode]] = {}
    for plan in _flat_plans(registered):
        for placed in plan.placements:
            if not getattr(placed.replica, "standby", False):
                continue
            node = placed.node
            if not node.alive or node.get_shard(placed.replica.key) is None:
                continue
            count, _ = held.get(node.name, (0, node))
            held[node.name] = (count + 1, node)
    if not held:
        return None
    name = max(held, key=lambda n: (held[n][0], n))
    return held[name][1]


def standby_coverage(registered, node: DhtNode) -> Tuple[int, int]:
    """(segments warm on ``node``, total segments) for one state."""
    covered = 0
    total = 0
    for plan in _flat_plans(registered):
        for index in plan.shard_indexes():
            total += 1
            if _holds_warm(plan, index, node):
                covered += 1
    return covered, total


@dataclass
class StandbySyncReport:
    """Outcome of one provisioning round."""

    state_name: str
    standby: str
    warm_segments: int  # already held before this round
    copied_segments: int  # shipped by this round
    missed_segments: int  # no surviving provider (or transfer aborted)
    copied_bytes: float
    warm_bytes: float  # resident warm image after the round

    @property
    def total_segments(self) -> int:
        return self.warm_segments + self.copied_segments + self.missed_segments


class StandbySync:
    """A provisioning round in flight; resolves to a report."""

    def __init__(self, state_name: str, standby: str) -> None:
        self.state_name = state_name
        self.standby = standby
        self._report: Optional[StandbySyncReport] = None
        self._callbacks: List[Callable[[StandbySyncReport], None]] = []

    @property
    def done(self) -> bool:
        return self._report is not None

    @property
    def report(self) -> StandbySyncReport:
        if self._report is None:
            raise RecoveryError(
                f"standby sync of {self.state_name!r} has not finished"
            )
        return self._report

    def on_done(self, callback: Callable[[StandbySyncReport], None]) -> None:
        if self._report is not None:
            callback(self._report)
        else:
            self._callbacks.append(callback)

    def _resolve(self, report: StandbySyncReport) -> None:
        self._report = report
        for callback in self._callbacks:
            callback(report)


def sync_standby(
    ctx: RecoveryContext,
    registered,
    standby: DhtNode,
    parent_span=None,
) -> StandbySync:
    """Warm (or re-warm) ``standby`` with every segment it is missing.

    Idempotent and incremental: segments already resident are skipped, so
    calling after every save round ships only the new delta links. Copies
    ride ordinary network flows tagged :data:`STANDBY_TAG` — they contend
    with application traffic, which is exactly the steady-state bandwidth
    cost the selection layer wants surfaced. Segments with no surviving
    provider are counted as missed, never fatal: the takeover path can
    still fetch them later if a replica resurfaces.
    """
    sim = ctx.sim
    name = registered.state_name
    handle = StandbySync(name, standby.name)
    span = sim.tracer.start(
        "standby/sync",
        category="standby.sync",
        parent=parent_span,
        state=name,
        standby=standby.name,
    )
    warm_segments = 0
    warm_bytes = 0.0
    missed = {"count": 0}
    todo: List[Tuple[PlacementPlan, PlacedShard]] = []
    for plan in _flat_plans(registered):
        for index in plan.shard_indexes():
            if _holds_warm(plan, index, standby):
                warm_segments += 1
                warm_bytes += plan.for_shard(index)[0].replica.size_bytes
                continue
            providers = [
                p
                for p in plan.providers_for(index)
                if p.node.node_id != standby.node_id
                and ctx.network.reachable(p.node.host, standby.host)
            ]
            if not providers:
                missed["count"] += 1
                continue
            todo.append((plan, providers[0]))

    progress = {"pending": len(todo), "copied": 0, "bytes": 0.0}
    started_at = sim.now

    def finish() -> None:
        resident = warm_bytes + progress["bytes"]
        sim.metrics.gauge("standby.warm_bytes").set(resident)
        # The warm image occupies the standby's memory from the moment it
        # lands — charged over the sync round so the resource profiles see
        # the steady-state footprint.
        ctx.charge_memory(
            standby, started_at, max(sim.now - started_at, 1e-9), resident
        )
        span.finish(
            warm=warm_segments,
            copied=progress["copied"],
            missed=missed["count"],
            bytes=progress["bytes"],
        )
        handle._resolve(
            StandbySyncReport(
                state_name=name,
                standby=standby.name,
                warm_segments=warm_segments,
                copied_segments=progress["copied"],
                missed_segments=missed["count"],
                copied_bytes=progress["bytes"],
                warm_bytes=resident,
            )
        )

    if not todo:
        finish()
        return handle

    def landed(plan: PlacementPlan, placed: PlacedShard) -> None:
        if not standby.alive:
            aborted()
            return
        replica = StandbyReplica(placed.replica.shard, placed.replica.num_replicas)
        standby.store_shard(replica.key, replica)
        plan.placements.append(PlacedShard(replica, standby))
        progress["copied"] += 1
        progress["bytes"] += replica.size_bytes
        sim.metrics.counter("standby.sync_bytes").add(replica.size_bytes)
        progress["pending"] -= 1
        if progress["pending"] == 0:
            finish()

    def aborted() -> None:
        missed["count"] += 1
        progress["pending"] -= 1
        if progress["pending"] == 0:
            finish()

    for plan, placed in todo:
        ctx.network.transfer(
            placed.node.host,
            standby.host,
            placed.replica.size_bytes,
            on_complete=lambda flow, p=plan, pl=placed: landed(p, pl),
            on_abort=lambda flow: aborted(),
            tag=STANDBY_TAG,
            parent_span=span,
        )
    return handle


class StandbyRecovery:
    """Ownership-flip takeover onto a warm standby."""

    name = "standby"

    def __init__(
        self,
        fetch_window: int = 4,
        retry_policy: RetryPolicy = RetryPolicy(),
    ) -> None:
        if fetch_window < 1:
            raise ValueError("fetch_window must be positive")
        self.fetch_window = fetch_window
        self.retry_policy = retry_policy

    def start(
        self,
        ctx: RecoveryContext,
        plan: PlacementPlan,
        replacement: DhtNode,
        state_name: Optional[str] = None,
        parent_span=None,
    ) -> RecoveryHandle:
        """Promote ``replacement``: flip ownership, replay the tail.

        Segments already resident on ``replacement`` (its warm image, or a
        regular replica it happens to hold) cost nothing to move; missing
        segments are fetched star-style from surviving providers first.
        """
        sim = ctx.sim
        cost = ctx.cost_model
        name = state_name or self._state_name_of(plan)
        handle = RecoveryHandle(self.name, name)
        started_at = sim.now
        tracer = sim.tracer
        root_span = tracer.start(
            "recovery/standby",
            category="recovery",
            parent=parent_span,
            state=name,
            replacement=replacement.name,
        )

        warm_segments = 0
        cold: List[Dict] = []
        used_nodes: Set[object] = set()
        involved: Set[str] = {replacement.name}
        total_bytes = 0.0
        for index in plan.shard_indexes():
            providers = plan.providers_for(index)
            if not providers:
                root_span.finish(error="insufficient_shards", shard=index)
                handle._fail(
                    InsufficientShardsError(
                        f"{name}: no surviving replica of shard {index}"
                    )
                )
                return handle
            local = [
                p for p in providers if p.node.node_id == replacement.node_id
            ]
            total_bytes += float(providers[0].replica.size_bytes)
            if local:
                warm_segments += 1
                continue
            fresh = [p for p in providers if p.node.node_id not in used_nodes]
            chosen: PlacedShard = (fresh or providers)[0]
            used_nodes.add(chosen.node.node_id)
            involved.add(chosen.node.name)
            cold.append({"index": index, "placed": chosen})

        chain_len = int(getattr(plan, "chain_length", 1))
        delta_bytes = float(getattr(plan, "delta_bytes", 0.0))
        num_segments = warm_segments + len(cold)
        root_span.annotate(
            state_bytes=total_bytes,
            shards=num_segments,
            warm_segments=warm_segments,
            cold_segments=len(cold),
            chain_len=chain_len,
            delta_bytes=delta_bytes,
        )
        progress = {"next": 0, "arrived": 0, "bytes": 0.0}
        policy = self.retry_policy

        def fetch_next() -> None:
            if progress["next"] >= len(cold):
                return
            assignment = cold[progress["next"]]
            progress["next"] += 1
            start_fetch(assignment)

        def start_fetch(assignment: Dict) -> None:
            if handle.done:
                return
            if not replacement.alive:
                fail(replacement_died(self.name, name, replacement))
                return
            placed: PlacedShard = assignment["placed"]
            if not ctx.network.reachable(placed.node.host, replacement.host):
                retry(assignment)
                return
            size = placed.replica.size_bytes
            involved.add(placed.node.name)
            fetch_span = root_span.child(
                f"fetch cold segment {assignment['index']} from {placed.node.name}",
                category="recovery.transfer",
                bytes=float(size),
                shard=assignment["index"],
                provider=placed.node.name,
                attempt=assignment.get("retries", 0),
            )
            ctx.network.transfer(
                placed.node.host,
                replacement.host,
                size,
                on_complete=lambda flow: arrived(assignment, fetch_span),
                on_abort=lambda flow: fetch_failed(assignment, fetch_span),
                parent_span=fetch_span,
            )

        def arrived(assignment: Dict, fetch_span) -> None:
            if handle.done:
                return
            fetch_span.finish()
            progress["bytes"] += assignment["placed"].replica.size_bytes
            progress["arrived"] += 1
            if progress["arrived"] == len(cold):
                takeover()
            else:
                fetch_next()

        def fetch_failed(assignment: Dict, fetch_span) -> None:
            fetch_span.finish(aborted=True)
            if handle.done:
                return
            if not replacement.alive:
                fail(replacement_died(self.name, name, replacement))
                return
            retry(assignment)

        def retry(assignment: Dict) -> None:
            index = assignment["index"]
            attempt = assignment.get("retries", 0)
            if attempt >= policy.max_retries:
                fail(
                    InsufficientShardsError(
                        f"{name}: cold segment {index} could not be fetched "
                        f"after {attempt} retries (providers kept dying or "
                        f"stayed unreachable)"
                    )
                )
                return
            assignment["retries"] = attempt + 1
            sim.metrics.counter("recovery.retries").add(1, label=self.name)
            tracer.instant(
                f"retry shard {index}",
                category="recovery.retry",
                shard=index,
                attempt=attempt + 1,
            )
            sim.schedule(policy.delay(attempt), reassign, assignment)

        def reassign(assignment: Dict) -> None:
            if handle.done:
                return
            index = assignment["index"]
            providers = plan.providers_for(index)
            if not providers:
                fail(
                    InsufficientShardsError(
                        f"{name}: every replica of shard {index} was lost "
                        f"during recovery"
                    )
                )
                return
            usable = [
                p
                for p in providers
                if ctx.network.reachable(p.node.host, replacement.host)
            ]
            if not usable:
                retry(assignment)
                return
            assignment["placed"] = usable[0]
            start_fetch(assignment)

        def fail(error: Exception) -> None:
            if handle.done:
                return
            root_span.finish(error=str(error))
            sim.metrics.counter("recovery.failed").add(1, label=self.name)
            handle._fail(error)

        def takeover() -> None:
            # The flip itself: routing update + store promotion. The warm
            # image is already merged and installed, so the only CPU on
            # the critical path is the unfolded delta tail plus folding
            # whatever cold segments had to be fetched.
            if not replacement.alive:
                fail(replacement_died(self.name, name, replacement))
                return
            flip = cost.standby_flip
            tail_bytes = delta_bytes * cost.standby_lag_fraction
            replay = cost.replay_time(tail_bytes, chain_len - 1)
            cold_bytes = progress["bytes"]
            fold = cost.merge_time(cold_bytes) + cost.install_time(cold_bytes)
            tracer.record(
                "flip ownership",
                sim.now,
                sim.now + flip,
                category="recovery.flip",
                parent=root_span,
                node=replacement.name,
            )
            if replay > 0:
                tracer.record(
                    "replay tail",
                    sim.now + flip,
                    sim.now + flip + replay,
                    category="recovery.replay",
                    parent=root_span,
                    bytes=tail_bytes,
                    links=chain_len - 1,
                    node=replacement.name,
                )
            if fold > 0:
                tracer.record(
                    "fold cold segments",
                    sim.now + flip + replay,
                    sim.now + flip + replay + fold,
                    category="recovery.merge",
                    parent=root_span,
                    bytes=cold_bytes,
                    node=replacement.name,
                )
            busy = flip + replay + fold
            ctx.charge_cpu(replacement, sim.now, busy, cost.merge_cpu_fraction)
            ctx.charge_memory(
                replacement,
                sim.now,
                busy,
                (cold_bytes + tail_bytes) * cost.buffer_memory_factor,
            )
            sim.schedule(busy, finish)

        def finish() -> None:
            if handle.done:
                return
            root_span.finish(bytes=progress["bytes"])
            sim.metrics.counter("recovery.completed").add(1, label=self.name)
            sim.metrics.histogram("recovery.duration").observe(sim.now - started_at)
            handle._resolve(
                RecoveryResult(
                    mechanism=self.name,
                    state_name=name,
                    state_bytes=total_bytes,
                    started_at=started_at,
                    finished_at=sim.now,
                    bytes_transferred=progress["bytes"],
                    nodes_involved=len(involved),
                    shards_recovered=num_segments,
                    replacement=replacement.name,
                    detail={
                        "warm_segments": float(warm_segments),
                        "cold_segments": float(len(cold)),
                        "flip_s": float(cost.standby_flip),
                    },
                )
            )

        def launch() -> None:
            detect_span.finish()
            if not cold:
                takeover()
                return
            for _ in range(min(self.fetch_window, len(cold))):
                fetch_next()

        # The dedicated primary↔standby heartbeat notices the failure in a
        # fraction of the DHT-wide detection delay.
        detection = cost.detection_delay * cost.standby_detection_factor
        detect_span = root_span.child(
            "detect", category="recovery.detect", delay=detection
        )
        sim.schedule(detection, launch)
        return handle

    @staticmethod
    def _state_name_of(plan: PlacementPlan) -> str:
        if not plan.placements:
            raise InsufficientShardsError("empty placement plan")
        return plan.placements[0].replica.shard.state_name
