"""The line-structured recovery mechanism (Sec. 3.5).

Shards are transmitted and combined along a chain covering the providing
nodes and the replacing node: each chain node merges its own shard into
the accumulated state and forwards the result downstream (Fig. 4). The
download and compute load is balanced across all chain nodes — no single
node does all the reconstruction — which helps recover large state, at the
price of per-stage latency that grows with the path length (Fig. 9b).

Modeling notes (documented in DESIGN.md): the chain is *pipelined* — a
node forwards merged data while still receiving — so the network wall time
is governed by the tightest link into the replacing node (simulated as one
full-size flow over the final hop), racing against the sequential chain of
per-stage CPU work. Each stage pays a merge of its own portion plus the
"redundant calculations in the state recovery path" (Sec. 5.2): a
recomputation proportional to the accumulated prefix it forwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dht.node import DhtNode
from repro.errors import InsufficientShardsError
from repro.recovery.model import (
    RecoveryContext,
    RecoveryHandle,
    RecoveryResult,
    RetryPolicy,
    replacement_died,
)
from repro.state.placement import PlacedShard, PlacementPlan


class LineRecovery:
    """Pipelined merge-chain recovery."""

    name = "line"

    def __init__(self, path_length: int = 8, retry_policy: RetryPolicy = RetryPolicy()) -> None:
        if path_length < 1:
            raise ValueError("path_length must be at least 1")
        self.path_length = path_length
        self.retry_policy = retry_policy

    def start(
        self,
        ctx: RecoveryContext,
        plan: PlacementPlan,
        replacement: DhtNode,
        state_name: Optional[str] = None,
        parent_span=None,
    ) -> RecoveryHandle:
        sim = ctx.sim
        cost = ctx.cost_model
        name = state_name or plan.placements[0].replica.shard.state_name
        handle = RecoveryHandle(self.name, name)
        started_at = sim.now
        tracer = sim.tracer
        root_span = tracer.start(
            "recovery/line",
            category="recovery",
            parent=parent_span,
            state=name,
            replacement=replacement.name,
            path_length=self.path_length,
        )

        # One surviving replica per shard, plus its lookup penalty when the
        # primary replica was lost.
        shard_sources: Dict[int, PlacedShard] = {}
        penalties: Dict[int, float] = {}
        for index in plan.shard_indexes():
            providers = plan.providers_for(index)
            if not providers:
                root_span.finish(error="insufficient_shards", shard=index)
                handle._fail(
                    InsufficientShardsError(
                        f"{name}: no surviving replica of shard {index}"
                    )
                )
                return handle
            shard_sources[index] = providers[0]
            penalties[index] = cost.lookup_penalty(
                providers[0].replica.num_replicas, len(providers)
            )

        total_bytes = float(
            sum(p.replica.size_bytes for p in shard_sources.values())
        )
        # Version-chain shape of the plan (1 link / 0 bytes for flat plans).
        version_links = int(getattr(plan, "chain_length", 1))
        delta_bytes = float(getattr(plan, "delta_bytes", 0.0))
        root_span.annotate(
            state_bytes=total_bytes,
            shards=len(shard_sources),
            chain_len=version_links,
            delta_bytes=delta_bytes,
        )

        # The chain: distinct provider nodes, at most ``path_length`` of them.
        chain: List[DhtNode] = []
        seen = set()
        for placed in shard_sources.values():
            if placed.node.node_id not in seen:
                chain.append(placed.node)
                seen.add(placed.node.node_id)
            if len(chain) == self.path_length:
                break
        if not chain:
            root_span.finish(error="no_chain_nodes")
            handle._fail(InsufficientShardsError(f"{name}: no chain nodes available"))
            return handle
        root_span.annotate(chain_length=len(chain))

        # Assign each shard to a chain node: its holder when the holder is
        # in the chain, round-robin otherwise (those must prefetch).
        stage_shards: Dict[int, List[PlacedShard]] = {i: [] for i in range(len(chain))}
        chain_index = {node.node_id: i for i, node in enumerate(chain)}
        rr = 0
        prefetches: List[Dict] = []
        for index, placed in sorted(shard_sources.items()):
            holder_pos = chain_index.get(placed.node.node_id)
            if holder_pos is None:
                holder_pos = rr % len(chain)
                rr += 1
                prefetches.append(
                    {
                        # Carry the plan's shard index (a global chain
                        # segment id for ChainPlans) — recomputing it from
                        # the shard object would lose the link offset.
                        "index": index,
                        "placed": placed,
                        "target": chain[holder_pos],
                        "penalty": penalties[index],
                    }
                )
            stage_shards[holder_pos].append(placed)

        involved = {replacement.name} | {node.name for node in chain}
        progress = {"bytes": 0.0, "stream_done": False, "cpu_done": False}
        retries = {"stream": 0, "prefetch": 0}
        policy = self.retry_policy

        def fail(error: Exception) -> None:
            if handle.done:
                return
            root_span.finish(error=str(error))
            sim.metrics.counter("recovery.failed").add(1, label=self.name)
            handle._fail(error)

        def count_retry(kind: str) -> int:
            retries[kind] += 1
            sim.metrics.counter("recovery.retries").add(1, label=self.name)
            tracer.instant(
                f"retry {kind}", category="recovery.retry", attempt=retries[kind]
            )
            return retries[kind]

        def maybe_install() -> None:
            if handle.done:
                return
            if not (progress["stream_done"] and progress["cpu_done"]):
                return
            replay = cost.replay_time(delta_bytes, version_links - 1)
            if replay > 0:
                # The replacement replays delta links in version order on
                # the fully streamed base before installing.
                tracer.record(
                    "replay deltas",
                    sim.now,
                    sim.now + replay,
                    category="recovery.replay",
                    parent=root_span,
                    bytes=delta_bytes,
                    links=version_links - 1,
                    node=replacement.name,
                )
            install = cost.install_time(total_bytes - delta_bytes)
            tracer.record(
                "install",
                sim.now + replay,
                sim.now + replay + install,
                category="recovery.install",
                parent=root_span,
                bytes=total_bytes,
                node=replacement.name,
            )
            ctx.charge_cpu(
                replacement, sim.now, replay + install, cost.merge_cpu_fraction
            )
            sim.schedule(replay + install, finish)

        def finish() -> None:
            if handle.done:
                return
            root_span.finish(bytes=progress["bytes"])
            sim.metrics.counter("recovery.completed").add(1, label=self.name)
            sim.metrics.histogram("recovery.duration").observe(sim.now - started_at)
            handle._resolve(
                RecoveryResult(
                    mechanism=self.name,
                    state_name=name,
                    state_bytes=total_bytes,
                    started_at=started_at,
                    finished_at=sim.now,
                    bytes_transferred=progress["bytes"],
                    nodes_involved=len(involved),
                    shards_recovered=len(shard_sources),
                    replacement=replacement.name,
                    detail={"path_length": float(len(chain))},
                )
            )

        def start_stream() -> None:
            # Network: the accumulated state streams through the chain; the
            # final hop into the replacement carries the full state and is
            # the governing link (chain links carry prefixes concurrently).
            # The sending tail is re-elected from the surviving chain if the
            # current tail dies mid-stream.
            if handle.done:
                return
            if not replacement.alive:
                fail(replacement_died(self.name, name, replacement))
                return
            alive_chain = [n for n in chain if n.alive]
            if not alive_chain:
                fail(
                    InsufficientShardsError(
                        f"{name}: every chain node died during line recovery"
                    )
                )
                return
            tail = alive_chain[-1]
            stream_span = root_span.child(
                f"stream chain->{replacement.name}",
                category="recovery.transfer",
                bytes=total_bytes,
                provider=tail.name,
                stage=len(chain) - 1,
            )

            def stream_arrived(_flow) -> None:
                if handle.done:
                    return
                stream_span.finish()
                progress["stream_done"] = True
                maybe_install()

            def stream_aborted(_flow) -> None:
                stream_span.finish(aborted=True)
                if handle.done:
                    return
                if not replacement.alive:
                    fail(replacement_died(self.name, name, replacement))
                    return
                attempt = count_retry("stream")
                if attempt > policy.max_retries:
                    fail(
                        InsufficientShardsError(
                            f"{name}: chain stream into {replacement.name} "
                            f"kept aborting after {policy.max_retries} retries"
                        )
                    )
                    return
                sim.schedule(policy.delay(attempt - 1), start_stream)

            ctx.network.transfer(
                tail.host,
                replacement.host,
                total_bytes,
                on_complete=stream_arrived,
                on_abort=stream_aborted,
                parent_span=stream_span,
            )

        def start_pipeline() -> None:
            start_stream()
            # Every chain link i carries the accumulated prefix; account
            # those bytes (the final hop is already metered by the flow).
            per_stage = total_bytes / len(chain)
            for i in range(1, len(chain)):
                progress["bytes"] += per_stage * i
            progress["bytes"] += total_bytes

            # CPU: sequential stage work along the chain. A stage whose
            # node died is taken over by the downstream survivor, which
            # re-merges from the replicas it already received — modelled as
            # the same stage cost charged to the replacement.
            def run_stage(i: int) -> None:
                if handle.done:
                    return
                if i >= len(chain):
                    progress["cpu_done"] = True
                    maybe_install()
                    return
                node = chain[i] if chain[i].alive else replacement
                own_bytes = float(
                    sum(p.replica.size_bytes for p in stage_shards[i])
                )
                accumulated = total_bytes * (i + 1) / len(chain)
                duration = (
                    cost.stage_setup
                    + cost.merge_time(own_bytes)
                    + cost.line_redundant_factor * cost.merge_time(accumulated)
                )
                tracer.record(
                    f"stage {i} on {node.name}",
                    sim.now,
                    sim.now + duration,
                    category="recovery.merge",
                    parent=root_span,
                    bytes=accumulated,
                    node=node.name,
                    stage=i,
                )
                ctx.charge_cpu(node, sim.now, duration, cost.merge_cpu_fraction)
                ctx.charge_memory(
                    node,
                    sim.now,
                    duration,
                    accumulated * cost.buffer_memory_factor,
                )
                sim.schedule(duration, run_stage, i + 1)

            run_stage(0)

        def start_prefetch() -> None:
            detect_span.finish()
            if not prefetches:
                start_pipeline()
                return
            remaining = {"count": len(prefetches)}

            def one_done(span) -> None:
                span.finish()
                if handle.done:
                    return
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    start_pipeline()

            def begin(item: Dict) -> None:
                if handle.done:
                    return
                placed: PlacedShard = item["placed"]
                index = item["index"]
                target: DhtNode = item["target"]
                if not target.alive:
                    # The chain node that should pre-stage this shard died;
                    # redirect the prefetch to the first surviving chain node
                    # (the pipeline re-merges it there).
                    survivors = [n for n in chain if n.alive]
                    if not survivors:
                        fail(
                            InsufficientShardsError(
                                f"{name}: every chain node died during "
                                f"line recovery"
                            )
                        )
                        return
                    target = item["target"] = survivors[0]
                if not ctx.network.reachable(placed.node.host, target.host):
                    # The provider died (or was cut off) before this
                    # prefetch started; switch to a usable replica now or
                    # back off and retry (the cut may heal).
                    providers = plan.providers_for(index)
                    if not providers:
                        fail(
                            InsufficientShardsError(
                                f"{name}: every replica of shard {index} "
                                f"was lost during recovery"
                            )
                        )
                        return
                    usable = [
                        p
                        for p in providers
                        if ctx.network.reachable(p.node.host, target.host)
                    ]
                    if usable:
                        placed = item["placed"] = usable[0]
                    else:
                        attempt = count_retry("prefetch")
                        if attempt > policy.max_retries:
                            fail(
                                InsufficientShardsError(
                                    f"{name}: shard {index} could not be "
                                    f"pre-staged after {policy.max_retries} "
                                    f"retries (providers kept dying or "
                                    f"stayed unreachable)"
                                )
                            )
                            return
                        sim.schedule(policy.delay(attempt - 1), begin, item)
                        return
                span = root_span.child(
                    f"prefetch shard {index} to {target.name}",
                    category="recovery.transfer",
                    bytes=float(placed.replica.size_bytes),
                    shard=index,
                    provider=placed.node.name,
                )

                def aborted(_flow) -> None:
                    span.finish(aborted=True)
                    if handle.done:
                        return
                    attempt = count_retry("prefetch")
                    if attempt > policy.max_retries:
                        fail(
                            InsufficientShardsError(
                                f"{name}: shard {index} could not be "
                                f"pre-staged after {policy.max_retries} "
                                f"retries (providers kept dying or stayed "
                                f"unreachable)"
                            )
                        )
                        return
                    providers = plan.providers_for(index)
                    if not providers:
                        fail(
                            InsufficientShardsError(
                                f"{name}: every replica of shard {index} "
                                f"was lost during recovery"
                            )
                        )
                        return
                    usable = [
                        p
                        for p in providers
                        if ctx.network.reachable(p.node.host, target.host)
                    ]
                    if usable:
                        item["placed"] = usable[0]
                    sim.schedule(policy.delay(attempt - 1), begin, item)

                ctx.network.transfer(
                    placed.node.host, target.host, placed.replica.size_bytes,
                    on_complete=lambda flow, s=span: one_done(s),
                    on_abort=aborted,
                    parent_span=span,
                )

            for item in prefetches:
                progress["bytes"] += item["placed"].replica.size_bytes
                sim.schedule(item["penalty"], begin, item)

        detect_span = root_span.child(
            "detect", category="recovery.detect", delay=cost.detection_delay
        )
        sim.schedule(cost.detection_delay, start_prefetch)
        return handle
