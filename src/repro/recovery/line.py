"""The line-structured recovery mechanism (Sec. 3.5).

Shards are transmitted and combined along a chain covering the providing
nodes and the replacing node: each chain node merges its own shard into
the accumulated state and forwards the result downstream (Fig. 4). The
download and compute load is balanced across all chain nodes — no single
node does all the reconstruction — which helps recover large state, at the
price of per-stage latency that grows with the path length (Fig. 9b).

Modeling notes (documented in DESIGN.md): the chain is *pipelined* — a
node forwards merged data while still receiving — so the network wall time
is governed by the tightest link into the replacing node (simulated as one
full-size flow over the final hop), racing against the sequential chain of
per-stage CPU work. Each stage pays a merge of its own portion plus the
"redundant calculations in the state recovery path" (Sec. 5.2): a
recomputation proportional to the accumulated prefix it forwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dht.node import DhtNode
from repro.errors import InsufficientShardsError
from repro.recovery.model import RecoveryContext, RecoveryHandle, RecoveryResult
from repro.state.placement import PlacedShard, PlacementPlan


class LineRecovery:
    """Pipelined merge-chain recovery."""

    name = "line"

    def __init__(self, path_length: int = 8) -> None:
        if path_length < 1:
            raise ValueError("path_length must be at least 1")
        self.path_length = path_length

    def start(
        self,
        ctx: RecoveryContext,
        plan: PlacementPlan,
        replacement: DhtNode,
        state_name: Optional[str] = None,
        parent_span=None,
    ) -> RecoveryHandle:
        sim = ctx.sim
        cost = ctx.cost_model
        name = state_name or plan.placements[0].replica.shard.state_name
        handle = RecoveryHandle(self.name, name)
        started_at = sim.now
        tracer = sim.tracer
        root_span = tracer.start(
            "recovery/line",
            category="recovery",
            parent=parent_span,
            state=name,
            replacement=replacement.name,
            path_length=self.path_length,
        )

        # One surviving replica per shard, plus its lookup penalty when the
        # primary replica was lost.
        shard_sources: Dict[int, PlacedShard] = {}
        penalties: Dict[int, float] = {}
        for index in plan.shard_indexes():
            providers = plan.providers_for(index)
            if not providers:
                root_span.finish(error="insufficient_shards", shard=index)
                handle._fail(
                    InsufficientShardsError(
                        f"{name}: no surviving replica of shard {index}"
                    )
                )
                return handle
            shard_sources[index] = providers[0]
            penalties[index] = cost.lookup_penalty(
                providers[0].replica.num_replicas, len(providers)
            )

        total_bytes = float(
            sum(p.replica.size_bytes for p in shard_sources.values())
        )

        # The chain: distinct provider nodes, at most ``path_length`` of them.
        chain: List[DhtNode] = []
        seen = set()
        for placed in shard_sources.values():
            if placed.node.node_id not in seen:
                chain.append(placed.node)
                seen.add(placed.node.node_id)
            if len(chain) == self.path_length:
                break
        if not chain:
            root_span.finish(error="no_chain_nodes")
            handle._fail(InsufficientShardsError(f"{name}: no chain nodes available"))
            return handle

        # Assign each shard to a chain node: its holder when the holder is
        # in the chain, round-robin otherwise (those must prefetch).
        stage_shards: Dict[int, List[PlacedShard]] = {i: [] for i in range(len(chain))}
        chain_index = {node.node_id: i for i, node in enumerate(chain)}
        rr = 0
        prefetches: List[Dict] = []
        for index, placed in sorted(shard_sources.items()):
            holder_pos = chain_index.get(placed.node.node_id)
            if holder_pos is None:
                holder_pos = rr % len(chain)
                rr += 1
                prefetches.append(
                    {
                        "placed": placed,
                        "target": chain[holder_pos],
                        "penalty": penalties[index],
                    }
                )
            stage_shards[holder_pos].append(placed)

        involved = {replacement.name} | {node.name for node in chain}
        progress = {"bytes": 0.0, "stream_done": False, "cpu_done": False}

        def maybe_install() -> None:
            if not (progress["stream_done"] and progress["cpu_done"]):
                return
            install = cost.install_time(total_bytes)
            tracer.record(
                "install",
                sim.now,
                sim.now + install,
                category="recovery.install",
                parent=root_span,
                bytes=total_bytes,
                node=replacement.name,
            )
            ctx.charge_cpu(replacement, sim.now, install, cost.merge_cpu_fraction)
            sim.schedule(install, finish)

        def finish() -> None:
            root_span.finish(bytes=progress["bytes"])
            sim.metrics.counter("recovery.completed").add(1, label=self.name)
            sim.metrics.histogram("recovery.duration").observe(sim.now - started_at)
            handle._resolve(
                RecoveryResult(
                    mechanism=self.name,
                    state_name=name,
                    state_bytes=total_bytes,
                    started_at=started_at,
                    finished_at=sim.now,
                    bytes_transferred=progress["bytes"],
                    nodes_involved=len(involved),
                    shards_recovered=len(shard_sources),
                    replacement=replacement.name,
                    detail={"path_length": float(len(chain))},
                )
            )

        def start_pipeline() -> None:
            # Network: the accumulated state streams through the chain; the
            # final hop into the replacement carries the full state and is
            # the governing link (chain links carry prefixes concurrently).
            stream_span = root_span.child(
                f"stream chain->{replacement.name}",
                category="recovery.transfer",
                bytes=total_bytes,
                provider=chain[-1].name,
            )

            def stream_arrived(_flow) -> None:
                stream_span.finish()
                progress["stream_done"] = True
                maybe_install()

            ctx.network.transfer(
                chain[-1].host,
                replacement.host,
                total_bytes,
                on_complete=stream_arrived,
                parent_span=stream_span,
            )
            # Every chain link i carries the accumulated prefix; account
            # those bytes (the final hop is already metered by the flow).
            per_stage = total_bytes / len(chain)
            for i in range(1, len(chain)):
                progress["bytes"] += per_stage * i
            progress["bytes"] += total_bytes

            # CPU: sequential stage work along the chain.
            def run_stage(i: int) -> None:
                if i >= len(chain):
                    progress["cpu_done"] = True
                    maybe_install()
                    return
                node = chain[i]
                own_bytes = float(
                    sum(p.replica.size_bytes for p in stage_shards[i])
                )
                accumulated = total_bytes * (i + 1) / len(chain)
                duration = (
                    cost.stage_setup
                    + cost.merge_time(own_bytes)
                    + cost.line_redundant_factor * cost.merge_time(accumulated)
                )
                tracer.record(
                    f"stage {i} on {node.name}",
                    sim.now,
                    sim.now + duration,
                    category="recovery.merge",
                    parent=root_span,
                    bytes=accumulated,
                    node=node.name,
                    stage=i,
                )
                ctx.charge_cpu(node, sim.now, duration, cost.merge_cpu_fraction)
                ctx.charge_memory(
                    node,
                    sim.now,
                    duration,
                    accumulated * cost.buffer_memory_factor,
                )
                sim.schedule(duration, run_stage, i + 1)

            run_stage(0)

        def start_prefetch() -> None:
            detect_span.finish()
            if not prefetches:
                start_pipeline()
                return
            remaining = {"count": len(prefetches)}

            def one_done(span) -> None:
                span.finish()
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    start_pipeline()

            for item in prefetches:
                placed: PlacedShard = item["placed"]
                progress["bytes"] += placed.replica.size_bytes

                def begin(p=placed, target=item["target"]) -> None:
                    span = root_span.child(
                        f"prefetch shard {p.replica.shard.index} to {target.name}",
                        category="recovery.transfer",
                        bytes=float(p.replica.size_bytes),
                        provider=p.node.name,
                    )
                    ctx.network.transfer(
                        p.node.host, target.host, p.replica.size_bytes,
                        on_complete=lambda flow, s=span: one_done(s),
                        parent_span=span,
                    )

                sim.schedule(item["penalty"], begin)

        detect_span = root_span.child("detect", category="recovery.detect")
        sim.schedule(cost.detection_delay, start_prefetch)
        return handle
