"""Online calibration of the closed-form cost model, per shard.

``predict_recovery_seconds`` is a static closed form: serial transfer plus
the CostModel's CPU terms. The gap between it and measured makespans is
exactly the queueing/contention behaviour the closed forms ignore — and it
is *systematic* per cluster, so it can be learned. :class:`OnlineSelector`
feeds observed :class:`~repro.recovery.selection.SelectionExplanation`
samples back into the model: per mechanism it fits ``observed ≈ a ×
predicted + b`` by ordinary least squares (closed form, no RNG — the
"seed-determinism" is structural) and predicts with the fitted line from
then on. Because the static prediction is the ``a=1, b=0`` point of the
same family, the fitted in-sample error can never exceed the static error,
and after a handful of observations it is strictly below whenever the
cluster deviates from the closed form at all.

The same object answers the *per-shard* question: given per-shard
profiles (bytes, SLO-criticality, heat), SLO-critical shards with a warm
standby get the standby tier, cold shards keep the cheapest tier, and
everything else takes the calibrated-cost argmin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SelectionError
from repro.recovery.model import CostModel
from repro.recovery.selection import (
    Mechanism,
    SelectionExplanation,
    SelectionInputs,
    predict_recovery_seconds,
    select_mechanism,
)

# Mechanisms the calibrator tracks; NONE never recovers so never calibrates.
CALIBRATED_MECHANISMS = ("star", "line", "tree", "standby")


def _key(mechanism: Union[Mechanism, str]) -> str:
    key = mechanism.value if isinstance(mechanism, Mechanism) else str(mechanism)
    if key not in CALIBRATED_MECHANISMS:
        raise SelectionError(f"unknown mechanism to calibrate: {key!r}")
    return key


@dataclass(frozen=True)
class ShardProfile:
    """What the per-shard decision looks at for one shard."""

    shard_index: int
    state_bytes: float
    slo_critical: bool = False
    cold: bool = False
    standby_provisioned: bool = False

    def __post_init__(self) -> None:
        if self.shard_index < 0:
            raise SelectionError("shard_index must be non-negative")
        if self.state_bytes < 0:
            raise SelectionError("state_bytes must be non-negative")


@dataclass(frozen=True)
class ShardDecision:
    """The tier one shard gets, and why."""

    shard_index: int
    mechanism: Mechanism
    predicted_seconds: float
    reason: str


class OnlineSelector:
    """Least-squares calibration of per-mechanism cost coefficients."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        bandwidth: Optional[float] = None,
        min_samples: int = 2,
    ) -> None:
        if min_samples < 2:
            raise SelectionError(
                "min_samples must be at least 2 (a 2-coefficient fit needs "
                "two points)"
            )
        self.cost_model = cost_model
        self.bandwidth = bandwidth
        self.min_samples = min_samples
        # Per mechanism: [(static_predicted_s, observed_s), ...] in
        # observation order (kept — order is part of the serialized state).
        self._samples: Dict[str, List[Tuple[float, float]]] = {}

    # ------------------------------------------------------------- observing

    def observe(
        self,
        mechanism: Union[Mechanism, str],
        inputs: SelectionInputs,
        observed_seconds: float,
    ) -> None:
        """Record one measured recovery makespan for one mechanism."""
        if observed_seconds < 0:
            raise SelectionError("observed_seconds must be non-negative")
        predicted = predict_recovery_seconds(
            mechanism, inputs, self.cost_model, self.bandwidth
        )
        self._samples.setdefault(_key(mechanism), []).append(
            (float(predicted), float(observed_seconds))
        )

    def observe_explanation(self, explanation: SelectionExplanation) -> None:
        """Fold every observed mechanism of one explanation into the fit."""
        for key, observed in sorted(explanation.observed_seconds.items()):
            if key in CALIBRATED_MECHANISMS:
                self.observe(key, explanation.inputs, observed)

    def samples(self, mechanism: Union[Mechanism, str]) -> int:
        return len(self._samples.get(_key(mechanism), ()))

    @property
    def total_samples(self) -> int:
        return sum(len(v) for v in self._samples.values())

    # ----------------------------------------------------------- calibrating

    def coefficients(self, mechanism: Union[Mechanism, str]) -> Tuple[float, float]:
        """The fitted ``(a, b)`` of ``observed ≈ a·predicted + b``.

        The fit is least squares in *relative* error — it minimizes
        ``Σ((a·pᵢ + b − oᵢ)/oᵢ)²`` — the same norm :meth:`static_error` /
        :meth:`calibrated_error` report. The static model is the
        ``(1, 0)`` point of this family, so by optimality the calibrated
        error can never exceed the static error. Falls back to the
        identity until ``min_samples`` observations exist.
        """
        points = [
            (p, o)
            for p, o in self._samples.get(_key(mechanism), [])
            if o > 0
        ]
        if len(points) < self.min_samples:
            return (1.0, 0.0)
        # Rows [pᵢ/oᵢ, 1/oᵢ] against target 1: normal equations of the
        # relative-error-weighted 2-coefficient fit.
        sum_uu = sum((p / o) ** 2 for p, o in points)
        sum_vv = sum((1.0 / o) ** 2 for _, o in points)
        sum_uv = sum(p / (o * o) for p, o in points)
        sum_u = sum(p / o for p, o in points)
        sum_v = sum(1.0 / o for _, o in points)
        denom = sum_uu * sum_vv - sum_uv * sum_uv
        if abs(denom) < 1e-12 or sum_uu <= 0:
            if sum_uu <= 0:
                return (1.0, 0.0)
            # Degenerate design (e.g. a single repeated point): scale-only
            # fit, still optimal within the b=0 sub-family.
            return (sum_u / sum_uu, 0.0)
        a = (sum_u * sum_vv - sum_v * sum_uv) / denom
        b = (sum_v * sum_uu - sum_u * sum_uv) / denom
        return (a, b)

    def predict(
        self, mechanism: Union[Mechanism, str], inputs: SelectionInputs
    ) -> float:
        """The calibrated prediction: fitted line over the static form."""
        static = predict_recovery_seconds(
            mechanism, inputs, self.cost_model, self.bandwidth
        )
        a, b = self.coefficients(mechanism)
        return max(0.0, a * static + b)

    def _errors(
        self, mechanism: Union[Mechanism, str], a: float, b: float
    ) -> Optional[float]:
        """RMS relative error of ``a·p + b`` against the observations."""
        points = self._samples.get(_key(mechanism), [])
        usable = [(p, o) for p, o in points if o > 0]
        if not usable:
            return None
        total = sum(((a * p + b - o) / o) ** 2 for p, o in usable)
        return (total / len(usable)) ** 0.5

    def static_error(self, mechanism: Union[Mechanism, str]) -> Optional[float]:
        """RMS relative error of the uncalibrated closed form."""
        return self._errors(mechanism, 1.0, 0.0)

    def calibrated_error(self, mechanism: Union[Mechanism, str]) -> Optional[float]:
        """RMS relative error of the fitted line (in-sample)."""
        a, b = self.coefficients(mechanism)
        return self._errors(mechanism, a, b)

    # ------------------------------------------------------ per-shard policy

    def decide_shards(
        self,
        profiles: Sequence[ShardProfile],
        base_inputs: Optional[SelectionInputs] = None,
    ) -> List[ShardDecision]:
        """Per-shard tiers: standby where the SLO demands it, cheap where
        nobody is looking, calibrated argmin elsewhere.

        ``base_inputs`` carries the application-level context (latency
        sensitivity, bandwidth, chain shape); per-shard fields override
        its size and standby provisioning.
        """
        base = base_inputs or SelectionInputs(state_bytes=0.0)
        decisions: List[ShardDecision] = []
        for profile in sorted(profiles, key=lambda p: p.shard_index):
            inputs = SelectionInputs(
                state_bytes=profile.state_bytes,
                stateful=base.stateful,
                latency_sensitive=base.latency_sensitive,
                bandwidth_constrained=base.bandwidth_constrained,
                computation_model=base.computation_model,
                large_state_threshold=base.large_state_threshold,
                chain_links=base.chain_links,
                delta_bytes=min(base.delta_bytes, profile.state_bytes),
                background_load=base.background_load,
                standby_provisioned=profile.standby_provisioned,
                standby_refresh_bytes_per_s=base.standby_refresh_bytes_per_s,
                standby_memory_bytes=base.standby_memory_bytes,
            )
            if profile.slo_critical and profile.standby_provisioned:
                mech = Mechanism.STANDBY
                reason = "slo-critical with warm standby: flip takeover"
            elif profile.cold:
                mech = Mechanism.STAR
                reason = "cold shard: cheapest tier, no steady-state cost"
            else:
                candidates = [Mechanism.STAR, Mechanism.LINE, Mechanism.TREE]
                if profile.standby_provisioned:
                    candidates.append(Mechanism.STANDBY)
                mech = min(
                    candidates,
                    key=lambda m: (self.predict(m, inputs), m.value),
                )
                reason = "calibrated-cost argmin"
                if self.total_samples == 0:
                    # Nothing observed yet: fall back to the Fig. 7 diagram
                    # rather than trusting uncalibrated closed forms.
                    mech = select_mechanism(inputs)
                    if mech is Mechanism.NONE:
                        mech = Mechanism.STAR
                    reason = "uncalibrated: Fig. 7 heuristic"
            decisions.append(
                ShardDecision(
                    shard_index=profile.shard_index,
                    mechanism=mech,
                    predicted_seconds=self.predict(mech, inputs),
                    reason=reason,
                )
            )
        return decisions

    # ---------------------------------------------------------- serializing

    def to_dict(self) -> Dict[str, object]:
        """Serializable calibration state (bench round-trips)."""
        coefficients = {}
        for key in CALIBRATED_MECHANISMS:
            if key in self._samples:
                a, b = self.coefficients(key)
                coefficients[key] = {"a": a, "b": b}
        return {
            "format": "sr3-online-selector-1",
            "min_samples": self.min_samples,
            "bandwidth": self.bandwidth,
            "samples": {
                key: [[p, o] for p, o in self._samples[key]]
                for key in sorted(self._samples)
            },
            "coefficients": coefficients,
        }

    @classmethod
    def from_dict(
        cls,
        payload: Dict[str, object],
        cost_model: Optional[CostModel] = None,
    ) -> "OnlineSelector":
        """Rebuild a selector from :meth:`to_dict` output.

        Coefficients are re-derived from the samples, so the round-trip is
        exact by construction; the stored ones are informational.
        """
        if payload.get("format") != "sr3-online-selector-1":
            raise SelectionError(
                f"not an OnlineSelector payload: {payload.get('format')!r}"
            )
        selector = cls(
            cost_model=cost_model,
            bandwidth=payload.get("bandwidth"),
            min_samples=int(payload.get("min_samples", 2)),
        )
        for key, points in dict(payload.get("samples") or {}).items():
            selector._samples[_key(key)] = [
                (float(p), float(o)) for p, o in points
            ]
        return selector

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OnlineSelector):
            return NotImplemented
        return (
            self._samples == other._samples
            and self.min_samples == other.min_samples
            and self.bandwidth == other.bandwidth
        )
