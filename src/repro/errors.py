"""Exception hierarchy for the SR3 reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish subsystem failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid internal state."""


class NetworkError(SimulationError):
    """A simulated network operation could not be carried out."""


class OverlayError(ReproError):
    """A DHT overlay operation failed (routing, join, repair)."""


class RoutingError(OverlayError):
    """A message could not be routed to its destination id."""


class MulticastError(OverlayError):
    """A Scribe multicast operation failed (unknown topic, broken tree)."""


class StateError(ReproError):
    """State-layer failure: bad shard, version conflict, checksum mismatch."""


class ShardError(StateError):
    """A shard is malformed or incompatible with its parent partitioning."""


class VersionConflictError(StateError):
    """Two state versions conflict during save or recovery."""


class IntegrityError(StateError):
    """A checksum or reconstruction-integrity check failed."""


class RecoveryError(ReproError):
    """A recovery mechanism could not reconstruct the requested state."""


class InsufficientShardsError(RecoveryError):
    """Not enough surviving shard replicas remain to rebuild the state."""


class SelectionError(RecoveryError):
    """The mechanism-selection heuristic received unusable inputs."""


class ErasureCodingError(ReproError):
    """Reed-Solomon encode/decode failure in the FP4S baseline."""


class TopologyError(ReproError):
    """A streaming topology is malformed (cycles, unknown components)."""


class StreamRuntimeError(ReproError):
    """The streaming engine failed while executing a topology."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""


class BenchmarkError(ReproError):
    """An experiment harness was misconfigured or produced no data."""


class LiveHarnessError(ReproError):
    """The live-traffic driver was misconfigured or its run went wrong."""
