"""Fig. 12a-12c: CPU, memory, and maintenance-network overhead."""

from conftest import run_once

from repro.bench import experiments as exp
from repro.util.stats import mean


def test_fig12a_cpu_overhead(benchmark, record):
    result = record(run_once(benchmark, exp.fig12a_cpu_overhead))
    cp = mean(result.column("checkpointing"))
    reductions = []
    for mech in ("star", "line", "tree"):
        m = mean(result.column(mech))
        assert m < cp
        reductions.append(1 - m / cp)
    # "The CPU overhead of SR3 is around 26.8% ~ 44.3% less than the
    # checkpointing recovery" — require a substantial (>15%) reduction.
    assert max(reductions) > 0.15


def test_fig12b_memory_overhead(benchmark, record):
    result = record(run_once(benchmark, exp.fig12b_memory_overhead))
    cp = mean(result.column("checkpointing"))
    for mech in ("star", "line", "tree"):
        m = mean(result.column(mech))
        # "The memory overhead of SR3 is around 30.9% ~ 35.6% less."
        assert m < cp


def test_fig12c_network_overhead(benchmark, record):
    result = record(
        run_once(
            benchmark,
            exp.fig12c_network_overhead,
            (20, 40, 80, 160, 320, 640, 1280),
        )
    )
    rates = result.column("bytes_per_node_per_second")
    nodes = result.column("num_nodes")
    # "The number of bytes sent per node increase only linearly, with an
    # exponential increase in the number of nodes": per-node rate grows
    # monotonically but by a small factor while N grows 64x.
    assert rates == sorted(rates)
    assert rates[-1] < 2 * rates[0]
    assert nodes[-1] == 64 * nodes[0]
