"""Ablation benchmarks: FP4S comparison, design-choice sweeps, baselines."""

from conftest import run_once

import pytest

from repro.bench import experiments as exp


def test_ablation_fp4s(benchmark, record):
    result = record(run_once(benchmark, exp.ablation_fp4s, (32, 64, 128)))
    for row in result.rows:
        # Sec. 2.3: 62.5% storage increment for the (26, 16) code, vs SR3's
        # replication-two save writing 2x the state.
        assert row["fp4s_storage_overhead"] == pytest.approx(0.625)
        assert row["fp4s_recovery_s"] > row["star_recovery_s"]
    at_128 = result.rows[-1]
    extra = at_128["fp4s_recovery_s"] - at_128["star_recovery_s"]
    # "~10 s additional in recovering 128MB state" from erasure compute.
    assert 5.0 < extra < 15.0


def test_ablation_replication_factor(benchmark, record):
    result = record(run_once(benchmark, exp.ablation_replication_factor, (2, 3, 4)))
    saves = result.column("save_s")
    stored = result.column("stored_bytes")
    # More replicas -> proportionally more stored bytes and slower saves.
    assert saves == sorted(saves)
    assert stored[2] == pytest.approx(2 * stored[0])
    # Recovery stays roughly flat (only one replica per shard is fetched).
    recoveries = result.column("recovery_s")
    assert max(recoveries) < 1.3 * min(recoveries)


def test_ablation_shard_count(benchmark, record):
    result = record(
        run_once(benchmark, exp.ablation_shard_count, (2, 4, 8, 16, 32))
    )
    times = result.column("recovery_s")
    # Finer shards parallelize fetches; past the sweet spot the per-shard
    # setup cost takes over — the curve is not monotonically decreasing.
    assert min(times) <= times[0]
    assert times[-1] >= min(times)


def test_ablation_selection_validation(benchmark, record):
    result = record(run_once(benchmark, exp.ablation_selection_validation))
    # In the regimes Fig. 7 is explicitly designed around, the heuristic's
    # choice is measured fastest.
    small_uncon = next(
        r for r in result.rows if r["state_mb"] == 8 and not r["constrained"]
    )
    assert small_uncon["chosen"] == small_uncon["fastest"] == "star"
    large_con = next(
        r for r in result.rows if r["state_mb"] == 128 and r["constrained"]
    )
    assert large_con["chosen"] == large_con["fastest"] == "tree"
    # Fig. 7 prefers line for large state with abundant bandwidth even
    # though Fig. 8a measures tree fastest there — the paper's own
    # heuristic/measurement discrepancy, reproduced faithfully.
    large_uncon = next(
        r for r in result.rows if r["state_mb"] == 128 and not r["constrained"]
    )
    assert large_uncon["chosen"] == "line"
    assert large_uncon["fastest"] == "tree"


def test_ablation_detection_latency(benchmark, record):
    result = record(
        run_once(benchmark, exp.ablation_detection_latency, (0.25, 1.0, 4.0))
    )
    detections = result.column("detection_s")
    repairs = result.column("time_to_repair_s")
    beats = result.column("heartbeat_bytes")
    # Faster heartbeats detect sooner but cost more maintenance traffic.
    assert detections == sorted(detections)
    assert beats == sorted(beats, reverse=True)
    # Repair = detection + recovery: strictly after detection.
    assert all(r > d for r, d in zip(repairs, detections))


def test_concurrent_apps_recovery(benchmark, record):
    result = record(run_once(benchmark, exp.concurrent_apps_recovery, (1, 4, 16, 64)))
    makespans = result.column("makespan_s")
    # Decentralized recovery: 64 simultaneous app recoveries finish within
    # a small factor of a single one (no centralized master bottleneck).
    assert makespans[-1] < 3 * makespans[0]
    # Makespan never decreases as the failure scale grows.
    assert makespans == sorted(makespans)


def test_ablation_speculation(benchmark, record):
    result = record(
        run_once(benchmark, exp.ablation_speculation, (1000.0, 50.0, 10.0, 1.0))
    )
    healthy = result.rows[0]
    # With no straggler, speculation adds no meaningful overhead.
    assert healthy["speculative_s"] <= healthy["star_s"] * 1.25
    # Under a severe straggler, speculation wins decisively.
    worst = result.rows[-1]
    assert worst["speculations"] >= 1
    assert worst["speculative_s"] < worst["star_s"] * 0.5
    # Plain star degrades monotonically as the straggler slows down.
    star = result.column("star_s")
    assert star == sorted(star)


def test_baseline_matrix(benchmark, record):
    result = record(run_once(benchmark, exp.baseline_matrix, 64))
    by_name = {r["approach"]: r["recovery_s"] for r in result.rows}
    # Replication fails over almost instantly (at 2x hardware); SR3 beats
    # checkpointing, lineage, and FP4S.
    assert by_name["replication"] < 2.0
    assert by_name["sr3_star"] < by_name["checkpointing"]
    assert by_name["sr3_star"] < by_name["lineage"]
    assert by_name["sr3_star"] < by_name["fp4s"]
