"""Fig. 11: load balance of shard replicas across the overlay.

The paper deploys 500 and 1,000 applications (32 MB state, 512 KB shards,
replication two) over 5,000 Pastry nodes, finding ~25 and ~40 shards per
node with 95% of nodes below 50 and 100 shards respectively. The
benchmarks run a 1/5-scale deployment by default (same densities: apps and
nodes both divided by 5, so the per-node expectations are identical); pass
``--full-scale`` semantics by editing SCALE below or use
``python -m repro.bench`` style scripts for the full run recorded in
EXPERIMENTS.md.
"""

import pytest
from conftest import run_once

from repro.bench import experiments as exp
from repro.util.stats import mean, percentile

SCALE = 5  # 1/SCALE of the paper's deployment, same app/node density


@pytest.mark.parametrize("paper_apps,mean_expectation", [(500, 12.8), (1000, 25.6)])
def test_fig11_load_balance(benchmark, record, paper_apps, mean_expectation):
    result = record(
        run_once(
            benchmark,
            exp.fig11_load_balance,
            paper_apps // SCALE,
            5000 // SCALE,
        )
    )
    counts = result.extra["counts"]
    # Mean shards/node matches the analytic density (apps*64*2/nodes).
    assert mean(counts) == pytest.approx(mean_expectation, rel=0.01)
    # Fig. 11c: with 500 apps ~95% of nodes store < 50 shards; with 1,000
    # apps ~95% store < 100 shards.
    threshold = 50 if paper_apps == 500 else 100
    below = sum(1 for c in counts if c < threshold) / len(counts)
    assert below >= 0.90
    # No centralized bottleneck: the p99 node is within a small factor of
    # the mean.
    assert percentile(counts, 99) < 4 * mean(counts)
