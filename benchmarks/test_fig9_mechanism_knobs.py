"""Fig. 9a-9d: the star/line/tree runtime-parameter sweeps."""

from conftest import run_once

from repro.bench import experiments as exp


def test_fig9a_star_fanout(benchmark, record):
    result = record(
        run_once(benchmark, exp.fig9a_star_fanout, (1, 2, 3, 4), (8, 16, 32))
    )
    # "The state recovery time does not change much as the star fan-out
    # changes" — flat within 20% per state size.
    for size in (8, 16, 32):
        series = result.series("state_mb", size, "recovery_s")
        assert max(series) - min(series) < 0.2 * min(series)
    # Larger state still costs more at every fan-out.
    assert result.series("state_mb", 32, "recovery_s")[0] > result.series(
        "state_mb", 8, "recovery_s"
    )[0]


def test_fig9b_line_path_length(benchmark, record):
    result = record(
        run_once(
            benchmark, exp.fig9b_line_path_length, (4, 8, 16, 32, 64), (8, 16, 32)
        )
    )
    # "The state recovery time increases as the path length increases."
    for size in (8, 16, 32):
        series = result.series("state_mb", size, "recovery_s")
        assert series == sorted(series)
        assert series[-1] > series[0]


def test_fig9c_tree_branch_depth(benchmark, record):
    result = record(
        run_once(benchmark, exp.fig9c_tree_branch_depth, (4, 8, 16, 32, 64), (16, 32))
    )
    # "Given the same state size, the state recovery time increases as the
    # branch length increases."
    for size in (16, 32):
        series = result.series("state_mb", size, "recovery_s")
        assert series == sorted(series)
        assert series[-1] > series[0]


def test_fig9d_tree_fanout(benchmark, record):
    result = record(
        run_once(benchmark, exp.fig9d_tree_fanout, (1, 2, 3, 4), (64, 128))
    )
    # "When the tree has larger fan-out bit, the depth of the tree will be
    # less ... which introduces lower latency" — decreasing trend (the
    # largest fan-out may tie once the tree bottoms out at depth 2).
    for size in (64, 128):
        series = result.series("state_mb", size, "recovery_s")
        assert series[-1] <= series[0]
        assert min(series) < series[0] or series[0] == series[-1]
