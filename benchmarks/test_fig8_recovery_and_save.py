"""Fig. 8a/8b/8c: recovery and save time vs state size, both bandwidth regimes."""

from conftest import run_once

from repro.bench import experiments as exp

SIZES_MB = (8, 16, 32, 64, 128)


def test_fig8a_recovery_no_constraint(benchmark, record):
    result = record(run_once(benchmark, exp.fig8a_recovery_no_constraint, SIZES_MB))
    for row in result.rows:
        # SR3 achieves 35.5%-65% less recovery time than checkpointing.
        best = min(row["star_s"], row["line_s"], row["tree_s"])
        assert best < row["checkpointing_s"] * (1 - 0.355)
    small, large = result.rows[0], result.rows[-1]
    # Star fastest when state is small; line longest, tree best when large.
    assert small["star_s"] == min(small["star_s"], small["line_s"], small["tree_s"])
    assert large["line_s"] == max(large["star_s"], large["line_s"], large["tree_s"])
    assert large["tree_s"] == min(large["star_s"], large["line_s"], large["tree_s"])


def test_fig8b_recovery_bw_constraint(benchmark, record):
    result = record(run_once(benchmark, exp.fig8b_recovery_bw_constraint, SIZES_MB))
    for row in result.rows:
        assert min(row["star_s"], row["line_s"], row["tree_s"]) < row["checkpointing_s"]
    large = result.rows[-1]
    # Star suffers the centralized bottleneck; tree wins at the extreme.
    assert large["star_s"] == max(large["star_s"], large["line_s"], large["tree_s"])
    assert large["tree_s"] == min(large["star_s"], large["line_s"], large["tree_s"])


def test_fig8c_save_time(benchmark, record):
    result = record(run_once(benchmark, exp.fig8c_save_time, SIZES_MB))
    small, large = result.rows[0], result.rows[-1]
    # SR3 save costs more for small state (partition/replication overhead)
    # and less for large state (leaf-set nodes share the work).
    assert small["sr3_s"] >= small["checkpointing_s"] * 0.9
    assert large["sr3_s"] < large["checkpointing_s"]
    # Save time grows with state size for both approaches.
    assert result.column("sr3_s") == sorted(result.column("sr3_s"))
    assert result.column("checkpointing_s") == sorted(result.column("checkpointing_s"))
