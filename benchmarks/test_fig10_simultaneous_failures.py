"""Fig. 10a-10c: recovery time vs number of simultaneous shard failures."""

import pytest
from conftest import run_once

from repro.bench import experiments as exp

FAILURES = (0, 10, 20, 30, 40)


@pytest.mark.parametrize("mechanism", ["star", "line", "tree"])
def test_fig10_simultaneous_failures(benchmark, record, mechanism):
    result = record(
        run_once(benchmark, exp.fig10_simultaneous_failures, mechanism, FAILURES, (2, 3))
    )
    r2 = result.series("replicas", 2, "recovery_s")
    r3 = result.series("replicas", 3, "recovery_s")
    # "Recovery time slightly increases with increasing number of shard
    # failures": non-decreasing, and bounded growth.
    assert r2 == sorted(r2)
    assert r3 == sorted(r3)
    assert r2[-1] <= 1.5 * r2[0]
    # "The recovery time with large replication factor (3) is lightly less
    # than the small replication factor (2)" at the failure-heavy end.
    assert r3[-1] <= r2[-1] * 1.02
