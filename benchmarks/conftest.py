"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark runs one experiment function from
:mod:`repro.bench.experiments` exactly once (``pedantic(rounds=1)``): the
interesting output is the *simulated* latency series, which is attached to
``benchmark.extra_info`` and asserted for shape; the wall time measured by
pytest-benchmark is the harness cost itself.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def record(benchmark):
    """Attach an ExperimentResult's rows to the benchmark report."""

    def _record(result):
        benchmark.extra_info["experiment"] = result.experiment_id
        benchmark.extra_info["rows"] = [
            {k: (round(v, 3) if isinstance(v, float) else v) for k, v in row.items()}
            for row in result.rows
        ]
        return result

    return _record
