"""Table 1: the state-management / recovery feature matrix."""

from conftest import run_once

from repro.bench import experiments as exp


def test_table1_overview(benchmark, record):
    result = record(run_once(benchmark, exp.table1_overview))
    systems = result.column("system")
    assert "SR3" in systems
    sr3 = next(r for r in result.rows if r["system"] == "SR3")
    others = [r for r in result.rows if r["system"] != "SR3"]
    # SR3 is the only system that both scales to large state and handles
    # multiple simultaneous failures with a dynamic policy.
    assert sr3["scales_to_large_state"] and sr3["handles_multiple_failures"]
    assert not any(
        r["scales_to_large_state"] and r["handles_multiple_failures"] for r in others
    )
