"""The perf-regression baseline and the bench CLI's profiling flags."""

import json

import pytest

from repro.bench.baseline import (
    BASELINE_FORMAT,
    baseline_metrics,
    compare_to_baseline,
    load_baseline,
    write_baseline,
)
from repro.bench.__main__ import main
from repro.errors import BenchmarkError
from repro.obs.profile import RecoveryProfile


def profile_stub(trace="sim-0", mechanism="star", state="s", makespan=5.0):
    return RecoveryProfile(
        trace=trace,
        mechanism=mechanism,
        state=state,
        root_span_id=1,
        started_at=0.0,
        finished_at=makespan,
        makespan=makespan,
        blame_seconds={},
        blame_fractions={},
        bytes_on_critical_path=0.0,
        state_bytes=0.0,
        span_count=1,
    )


class TestBaselineMetrics:
    def test_keying(self):
        metrics = baseline_metrics([profile_stub(makespan=5.0)])
        assert metrics == {"sim-0/star/s#0": 5.0}

    def test_repeated_recoveries_disambiguate(self):
        metrics = baseline_metrics(
            [profile_stub(makespan=5.0), profile_stub(makespan=7.0)]
        )
        assert metrics == {"sim-0/star/s#0": 5.0, "sim-0/star/s#1": 7.0}


class TestCompare:
    def test_within_tolerance_passes(self):
        comparison = compare_to_baseline({"k": 10.0}, {"k": 11.9}, tolerance=0.20)
        assert comparison.ok
        assert comparison.compared == 1

    def test_regression_flags(self):
        comparison = compare_to_baseline({"k": 10.0}, {"k": 12.1}, tolerance=0.20)
        assert not comparison.ok
        (regression,) = comparison.regressions
        assert regression.key == "k"
        assert regression.ratio == pytest.approx(1.21)
        assert "REGRESSION" in comparison.summary()

    def test_improvement_reported_not_failed(self):
        comparison = compare_to_baseline({"k": 10.0}, {"k": 5.0}, tolerance=0.20)
        assert comparison.ok
        assert len(comparison.improvements) == 1

    def test_new_and_missing_keys_never_fail(self):
        comparison = compare_to_baseline({"old": 1.0}, {"new": 1.0})
        assert comparison.ok
        assert comparison.new_keys == ["new"]
        assert comparison.missing_keys == ["old"]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(BenchmarkError):
            compare_to_baseline({}, {}, tolerance=-0.1)

    def test_wall_clock_keys_are_informational(self):
        """Keys with wall-clock suffixes never gate, even on huge swings."""
        baseline = {
            "scale/512/star": 3.0,
            "scale/512/star/wall_s": 0.1,
            "scale/512/star/events_per_s": 10000.0,
        }
        measured = {
            "scale/512/star": 3.0,
            "scale/512/star/wall_s": 50.0,
            "scale/512/star/events_per_s": 1.0,
        }
        comparison = compare_to_baseline(baseline, measured, tolerance=0.20)
        assert comparison.ok
        assert comparison.compared == 1
        assert comparison.informational == 2
        assert comparison.new_keys == []
        assert comparison.missing_keys == []
        assert "informational" in comparison.summary()


class TestArtifactRoundTrip:
    def test_write_load(self, tmp_path):
        path = tmp_path / "BENCH_sr3.json"
        write_baseline(str(path), {"b": 2.0, "a": 1.0})
        payload = json.loads(path.read_text())
        assert payload["format"] == BASELINE_FORMAT
        assert list(payload["metrics"]) == ["a", "b"]
        assert load_baseline(str(path)) == {"a": 1.0, "b": 2.0}

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other", "metrics": {}}')
        with pytest.raises(BenchmarkError):
            load_baseline(str(path))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(BenchmarkError):
            load_baseline(str(tmp_path / "nope.json"))


class TestCliIntegration:
    def test_profile_artifact_written(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        assert main(["fig9a", "--profile", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["format"] == "sr3-profile-1"
        assert payload["recoveries"] > 0
        for profile in payload["profiles"]:
            assert sum(profile["blame_fractions"].values()) == pytest.approx(1.0)
            assert "selection" in profile

    def test_profile_artifact_deterministic(self, tmp_path, capsys):
        paths = [tmp_path / "p1.json", tmp_path / "p2.json"]
        for path in paths:
            assert main(["fig9a", "--profile", str(path)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_baseline_written_then_green(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_sr3.json"
        assert main(["fig9a", "--baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert main(["fig9a", "--baseline", str(baseline)]) == 0
        assert "0 regressed" in capsys.readouterr().err

    def test_baseline_gate_trips(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_sr3.json"
        assert main(["fig9a", "--baseline", str(baseline)]) == 0
        payload = json.loads(baseline.read_text())
        payload["metrics"] = {k: v * 0.5 for k, v in payload["metrics"].items()}
        baseline.write_text(json.dumps(payload))
        assert main(["fig9a", "--baseline", str(baseline)]) == 3
        assert "REGRESSION" in capsys.readouterr().err

    def test_update_baseline_merges(self, tmp_path, capsys):
        # One baseline file carries keys from several experiments (fig8a,
        # saveamp, ...), so an update from one run must overwrite its own
        # keys while leaving the other experiments' keys untouched.
        baseline = tmp_path / "BENCH_sr3.json"
        write_baseline(
            str(baseline),
            {"other-experiment/key#0": 1.0, "sim-0/star/app/state#0": 99.0},
        )
        assert main(["fig9a", "--baseline", str(baseline), "--update-baseline"]) == 0
        merged = load_baseline(str(baseline))
        assert merged["other-experiment/key#0"] == 1.0
        assert merged["sim-0/star/app/state#0"] != 99.0

    def test_metrics_out(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["fig9a", "--metrics-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["format"] == "sr3-metrics-1"
        assert payload["registries"]
        first = payload["registries"][0]
        assert first["name"].startswith("sim-")
        assert any(k.startswith("net.host.") for k in first["series"])

    def test_flamegraph_and_speedscope_flags(self, tmp_path, capsys):
        flame = tmp_path / "flame.txt"
        scope = tmp_path / "scope.json"
        assert (
            main(
                [
                    "fig9a",
                    "--flamegraph",
                    str(flame),
                    "--speedscope",
                    str(scope),
                ]
            )
            == 0
        )
        assert flame.read_text().strip()
        doc = json.loads(scope.read_text())
        assert doc["profiles"]
