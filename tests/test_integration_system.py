"""System-level integration tests: churn, determinism, end-to-end flows."""

import random

import pytest

from repro.dht.overlay import Overlay
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import RecoveryContext, run_handles
from repro.recovery.star import StarRecovery
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.state.partitioner import partition_snapshot, partition_synthetic
from repro.state.store import StateStore
from repro.state.version import StateVersion
from repro.streaming.backend import SR3StateBackend
from repro.streaming.cluster import LocalCluster
from repro.util.ids import random_node_id
from repro.util.sizes import MB
from repro.workloads.wordcount import build_wordcount_topology


class TestOverlayChurn:
    """The overlay is 'self-organizing and self-repairing' (Sec. 3.3)."""

    def test_routing_correct_through_interleaved_churn(self):
        sim = Simulator()
        net = Network(sim)
        overlay = Overlay(sim, net, rng=random.Random(3))
        overlay.build(80)
        rng = random.Random(77)
        for step in range(30):
            action = rng.choice(["fail", "join", "route"])
            if action == "fail" and len(overlay.alive_nodes()) > 40:
                overlay.fail_node(rng.choice(overlay.alive_nodes()))
            elif action == "join":
                overlay.add_node()
            key = random_node_id(rng)
            start = rng.choice(overlay.alive_nodes())
            dest, _ = overlay.route(start, key)
            assert dest.node_id == overlay.responsible_node(key).node_id

    def test_leaf_sets_stay_full_through_churn(self):
        sim = Simulator()
        net = Network(sim)
        overlay = Overlay(sim, net, leaf_set_size=8, rng=random.Random(5))
        overlay.build(60)
        rng = random.Random(9)
        for _ in range(10):
            overlay.fail_node(rng.choice(overlay.alive_nodes()))
        assert all(n.leaf_set.is_full() for n in overlay.alive_nodes())


class TestDeterminism:
    """Same seed, same everything — the property all figures rely on."""

    def _run_recovery(self, seed):
        sim = Simulator()
        net = Network(sim)
        overlay = Overlay(sim, net, rng=random.Random(seed))
        overlay.build(64)
        manager = RecoveryManager(RecoveryContext(sim, net, overlay))
        shards = partition_synthetic("a/s", 32 * MB, 8, StateVersion(0.0, 1))
        manager.register(overlay.nodes[0], shards, 2)
        manager.save("a/s")
        sim.run_until_idle()
        overlay.fail_node(overlay.nodes[0])
        handle = manager.recover("a/s", mechanism=StarRecovery())
        return run_handles(sim, [handle])[0]

    def test_identical_runs(self):
        a = self._run_recovery(11)
        b = self._run_recovery(11)
        assert a.duration == b.duration
        assert a.replacement == b.replacement
        assert a.bytes_transferred == b.bytes_transferred

    def test_different_seeds_differ(self):
        a = self._run_recovery(11)
        b = self._run_recovery(12)
        assert a.replacement != b.replacement or a.duration != b.duration


class TestEndToEnd:
    def test_wordcount_with_periodic_checkpoints_and_crash(self):
        sim = Simulator()
        net = Network(sim)
        overlay = Overlay(sim, net, rng=random.Random(21))
        overlay.build(64)
        backend = SR3StateBackend(
            RecoveryManager(RecoveryContext(sim, net, overlay)), num_shards=2
        )
        topo = build_wordcount_topology(num_sentences=200, seed=0, count_parallelism=2)
        cluster = LocalCluster(topo, backend=backend)
        cluster.protect_stateful_tasks()
        # Periodic saving every 50 emissions (Sec. 4's periodic save).
        cluster.run(max_emissions=150, checkpoint_every=50)
        saved_rounds = [
            t.save_rounds for t in backend.protected_tasks().values()
        ]
        assert all(rounds == 3 for rounds in saved_rounds)
        # Crash both counters; recover; finish the stream.
        expected_cluster = LocalCluster(
            build_wordcount_topology(num_sentences=200, seed=0, count_parallelism=2)
        )
        expected_cluster.run()
        cluster.kill_task("count", 0)
        cluster.kill_task("count", 1)
        cluster.recover_task("count", 0)
        cluster.recover_task("count", 1)
        cluster.run()
        merged = {}
        for bolt in cluster.stateful_tasks().values():
            merged.update(dict(bolt.state.items()))
        expected = {}
        for bolt in expected_cluster.stateful_tasks().values():
            expected.update(dict(bolt.state.items()))
        assert merged == expected

    def test_periodic_checkpoint_requires_backend(self):
        cluster = LocalCluster(build_wordcount_topology(num_sentences=10))
        from repro.errors import StreamRuntimeError

        with pytest.raises(StreamRuntimeError):
            cluster.run(checkpoint_every=5)

    def test_real_state_through_dht_node_failure(self):
        """Full stack: real entries, node crash, overlay repair, recovery."""
        sim = Simulator()
        net = Network(sim)
        overlay = Overlay(sim, net, rng=random.Random(31))
        overlay.build(96)
        manager = RecoveryManager(RecoveryContext(sim, net, overlay))
        store = StateStore("app/kv")
        for i in range(1000):
            store.put(f"key-{i}", {"value": i, "tags": [i % 7, i % 11]})
        snapshot = store.snapshot(0.0)
        shards = partition_snapshot(snapshot, 8)
        owner = overlay.nodes[0]
        manager.register(owner, shards, num_replicas=3)
        manager.save("app/kv")
        sim.run_until_idle()
        # Crash the owner AND one replica holder simultaneously.
        plan = manager.states["app/kv"].plan
        replica_holder = plan.placements[0].node
        overlay.fail_node(owner)
        overlay.fail_node(replica_holder)
        handle = manager.recover("app/kv")
        run_handles(sim, [handle])
        from repro.state.partitioner import merge_shards

        recovered = merge_shards(plan.available_shards())
        assert recovered.as_dict() == snapshot.as_dict()
