"""Robust spike and level-shift detection over telemetry series."""

import pytest

from repro.errors import ConfigError
from repro.obs.anomaly import AnomalyDetector
from repro.obs.timeseries import TelemetryPipeline
from repro.sim import Simulator


def pipeline_with(points, series="m", kind="gauge"):
    pipe = TelemetryPipeline(Simulator())
    for t, v in points:
        pipe.record(series, t, v, kind=kind)
    return pipe


def noisy_baseline(n=16, level=10.0):
    # Deterministic +/-0.5 jitter keeps the MAD positive.
    return [(float(i), level + (0.5 if i % 2 else -0.5)) for i in range(n)]


class TestValidation:
    def test_knobs(self):
        pipe = TelemetryPipeline(Simulator())
        with pytest.raises(ConfigError):
            AnomalyDetector(pipe, window=2)
        with pytest.raises(ConfigError):
            AnomalyDetector(pipe, window=8, min_points=9)
        with pytest.raises(ConfigError):
            AnomalyDetector(pipe, z_threshold=0.0)
        with pytest.raises(ConfigError):
            AnomalyDetector(pipe, cooldown_s=-1.0)


class TestSpike:
    def test_flags_an_outlier(self):
        pipe = pipeline_with(noisy_baseline() + [(16.0, 100.0)])
        det = AnomalyDetector(pipe, window=16, min_points=8, z_threshold=4.5)
        found = det.scan(16.0)
        assert len(found) == 1
        anomaly = found[0]
        assert anomaly.kind == "spike"
        assert anomaly.series == "m"
        assert anomaly.at == 16.0
        assert anomaly.value == 100.0
        assert anomaly.score > 4.5
        assert anomaly.baseline == pytest.approx(10.0, abs=1.0)

    def test_quiet_on_jitter(self):
        pipe = pipeline_with(noisy_baseline(17))
        det = AnomalyDetector(pipe, window=16, min_points=8)
        assert det.scan(17.0) == []

    def test_needs_min_points(self):
        pipe = pipeline_with(noisy_baseline(6) + [(6.0, 100.0)])
        det = AnomalyDetector(pipe, window=16, min_points=12)
        assert det.scan(6.0) == []

    def test_zero_mad_fallback_is_bounded(self):
        # A perfectly flat zero baseline, then a surge: the score must be
        # large (it fires) but finite/sane, not millions of sigma.
        flat = [(float(i), 0.0) for i in range(12)]
        pipe = pipeline_with(flat + [(12.0, 2000.0)])
        det = AnomalyDetector(pipe, window=16, min_points=8, z_threshold=4.5)
        found = det.scan(12.0)
        assert len(found) == 1
        assert found[0].score == pytest.approx(0.6745 / 0.05, rel=1e-6)

    def test_rescan_same_point_is_silent(self):
        pipe = pipeline_with(noisy_baseline() + [(16.0, 100.0)])
        det = AnomalyDetector(pipe, window=16, min_points=8)
        assert len(det.scan(16.0)) == 1
        assert det.scan(16.0) == []  # no new point: nothing to judge

    def test_cooldown_rate_limits(self):
        pipe = pipeline_with(noisy_baseline() + [(16.0, 100.0)])
        det = AnomalyDetector(pipe, window=16, min_points=8, cooldown_s=5.0)
        assert len(det.scan(16.0)) == 1
        pipe.record("m", 17.0, 120.0)
        assert det.scan(17.0) == []  # inside the cooldown
        pipe.record("m", 22.0, 120.0)
        assert len(det.scan(22.0)) == 1  # cooled off
        assert len(det.anomalies) == 2


class TestLevelShift:
    def shifted_rate(self):
        older = [(float(i), 100.0 + (0.5 if i % 2 else -0.5)) for i in range(8)]
        recent = [(8.0 + i, 10.0 + (0.5 if i % 2 else -0.5)) for i in range(8)]
        return older + recent

    def test_fires_on_rate_series_only(self):
        for kind, expected in (("rate", 1), ("gauge", 0)):
            pipe = pipeline_with(self.shifted_rate(), kind=kind)
            det = AnomalyDetector(
                pipe, window=16, min_points=8, z_threshold=1e9, shift_factor=4.0
            )
            found = det.scan(16.0)
            assert len(found) == expected, kind
            if expected:
                assert found[0].kind == "level-shift"
                assert found[0].baseline == pytest.approx(100.0, abs=1.0)
                assert found[0].value == pytest.approx(10.0, abs=1.0)
                assert found[0].score < 0  # a collapse, not a surge


class TestWatchSet:
    def test_pinned_series_ignores_others(self):
        pipe = pipeline_with(noisy_baseline() + [(16.0, 100.0)], series="watched")
        for t, v in noisy_baseline() + [(16.0, 100.0)]:
            pipe.record("ignored", t, v)
        det = AnomalyDetector(
            pipe, series=("watched", "absent"), window=16, min_points=8
        )
        found = det.scan(16.0)
        assert [a.series for a in found] == ["watched"]

    def test_to_event(self):
        pipe = pipeline_with(noisy_baseline() + [(16.0, 100.0)])
        det = AnomalyDetector(pipe, window=16, min_points=8)
        event = det.scan(16.0)[0].to_event()
        assert event.kind == "metric-anomaly"
        assert event.at == 16.0
        attrs = dict(event.attrs)
        assert attrs["series"] == "m"
        assert attrs["anomaly"] == "spike"
        assert attrs["value"] == 100.0
