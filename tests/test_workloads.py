"""Unit tests for workload generators and application topologies."""

from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.streaming.cluster import LocalCluster
from repro.workloads.clicks import (
    ClickGenerator,
    build_fraud_detection_topology,
    build_micro_promotion_topology,
    build_product_bundling_topology,
)
from repro.workloads.finance import (
    TickGenerator,
    build_bargain_index_topology,
)
from repro.workloads.traffic import BusTraceGenerator, build_traffic_topology
from repro.workloads.wordcount import (
    SentenceGenerator,
    build_wordcount_topology,
)


class TestTickGenerator:
    def test_deterministic(self):
        assert list(TickGenerator(100, seed=3)) == list(TickGenerator(100, seed=3))

    def test_distinct_seeds_differ(self):
        assert list(TickGenerator(100, seed=1)) != list(TickGenerator(100, seed=2))

    def test_count_and_schema(self):
        ticks = list(TickGenerator(50, seed=0))
        assert len(ticks) == 50
        symbol, price, volume, ts = ticks[0]
        assert isinstance(symbol, str)
        assert price > 0
        assert volume >= 100
        assert ts == 0.0

    def test_prices_stay_positive(self):
        assert all(price > 0 for _, price, _, _ in TickGenerator(500, seed=9))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TickGenerator(-1)
        with pytest.raises(WorkloadError):
            TickGenerator(1, symbols=())


class TestSentenceGenerator:
    def test_deterministic(self):
        a = list(SentenceGenerator(20, seed=4))
        assert a == list(SentenceGenerator(20, seed=4))

    def test_sentence_shape(self):
        sentences = list(SentenceGenerator(10, words_per_sentence=5))
        assert all(len(s.split()) == 5 for s in sentences)

    def test_zipf_skew(self):
        gen = SentenceGenerator(600, vocabulary_size=500, seed=1)
        counts = Counter(w for s in gen for w in s.split())
        top_share = sum(c for _, c in counts.most_common(25)) / sum(counts.values())
        assert top_share > 0.3  # heavy head, as in natural text

    def test_validation(self):
        with pytest.raises(WorkloadError):
            SentenceGenerator(1, words_per_sentence=0)
        with pytest.raises(WorkloadError):
            SentenceGenerator(1, zipf_s=0)


class TestBusTraceGenerator:
    def test_deterministic_and_schema(self):
        events = list(BusTraceGenerator(100, seed=5))
        assert events == list(BusTraceGenerator(100, seed=5))
        bus, route, lat, lon, delay, ts = events[0]
        assert bus.startswith(route)
        assert delay >= 0
        assert 53.0 < lat < 54.0

    def test_routes_bounded(self):
        events = list(BusTraceGenerator(200, num_routes=3, seed=2))
        assert {e[1] for e in events} <= {f"route-{i}" for i in range(3)}

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BusTraceGenerator(1, num_routes=0)
        with pytest.raises(WorkloadError):
            BusTraceGenerator(1, spike_probability=2.0)


class TestClickGenerator:
    def test_deterministic(self):
        assert list(ClickGenerator(100, seed=6)) == list(ClickGenerator(100, seed=6))

    def test_event_mix(self):
        events = list(ClickGenerator(1000, seed=7, buy_fraction=0.2))
        kinds = Counter(e[0] for e in events)
        assert kinds["click"] > kinds["buy"] > 0

    def test_product_skew(self):
        events = list(ClickGenerator(2000, num_products=100, seed=8))
        counts = Counter(e[3] for e in events)
        top10 = sum(c for _, c in counts.most_common(10))
        assert top10 / len(events) > 0.2

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ClickGenerator(1, num_products=1)
        with pytest.raises(WorkloadError):
            ClickGenerator(1, buy_fraction=1.5)


class TestApplicationTopologies:
    def test_wordcount_counts_correctly(self):
        topo = build_wordcount_topology(num_sentences=100, seed=0, count_parallelism=3)
        cluster = LocalCluster(topo)
        cluster.run()
        expected = Counter(
            w
            for s in SentenceGenerator(100, seed=0, vocabulary_size=2_000)
            for w in s.split()
        )
        merged = {}
        for bolt in cluster.stateful_tasks().values():
            merged.update(dict(bolt.state.items()))
        assert merged == dict(expected)

    def test_bargain_index_emits_alerts_with_state(self):
        cluster = LocalCluster(build_bargain_index_topology(num_ticks=1500, seed=1))
        cluster.run()
        alerts = cluster.outputs["bargain"]
        assert alerts, "random-walk prices must dip below VWAP sometimes"
        assert all(t["bargain_index"] > 0 for t in alerts)
        state_entries = sum(
            len(b.state) for b in cluster.stateful_tasks().values()
        )
        assert state_entries > 0

    def test_traffic_monitoring_raises_alerts(self):
        cluster = LocalCluster(
            build_traffic_topology(num_events=4000, seed=2, alert_threshold=120.0)
        )
        cluster.run()
        alerts = cluster.outputs["monitor"]
        assert alerts
        assert all(t["window_avg"] > 120.0 for t in alerts)

    def test_micro_promotion_topk(self):
        cluster = LocalCluster(build_micro_promotion_topology(num_events=2000, seed=3))
        cluster.run()
        bolt = cluster.task("topk")
        ranking = bolt.top_k()
        assert len(ranking) == 5
        clicks = [c for _, c in ranking]
        assert clicks == sorted(clicks, reverse=True)
        # The ranking matches the bolt's full state.
        state = dict(bolt.state.items())
        assert clicks[0] == max(state.values())

    def test_product_bundling_builds_graph(self):
        cluster = LocalCluster(build_product_bundling_topology(num_events=3000, seed=4))
        cluster.run()
        bolt = cluster.task("bundling")
        bundles = bolt.strongest_bundles(5)
        assert bundles
        assert all(a < b for a, b, _ in bundles)
        weights = [w for _, _, w in bundles]
        assert weights == sorted(weights, reverse=True)

    def test_fraud_detection_flags_duplicates(self):
        cluster = LocalCluster(build_fraud_detection_topology(num_events=2000, seed=5))
        cluster.run()
        flagged = cluster.outputs["fraud"]
        assert flagged, "fraudsters repeat clicks; some must be flagged"
        # The hammered fraud IP dominates the flags.
        fraud_ips = Counter(t["ip"] for t in flagged)
        assert fraud_ips.most_common(1)[0][0] == "10.0.0.1"


class TestSeedDeterministicResumption:
    """Source rewind support: a fresh iterator replays the same stream.

    The live driver's exactly-once protocol rolls the topology back to a
    checkpoint barrier and re-iterates the generator from index zero,
    skipping up to the barrier; that only works if iteration is a pure
    function of the seed, including across *resumed* (partially consumed,
    then restarted) iterators.
    """

    def test_sentence_generator_restart_replays_identically(self):
        gen = SentenceGenerator(200, seed=11)
        first = list(gen)
        it = iter(gen)
        prefix = [next(it) for _ in range(80)]
        assert prefix == first[:80]
        replay = list(iter(gen))
        assert replay == first

    def test_sentence_generator_interleaved_iterators_independent(self):
        gen = SentenceGenerator(50, seed=7)
        a, b = iter(gen), iter(gen)
        seq_a = [next(a) for _ in range(25)]
        seq_b = [next(b) for _ in range(25)]
        assert seq_a == seq_b

    def test_bus_trace_restart_replays_identically(self):
        gen = BusTraceGenerator(300, seed=5)
        first = list(gen)
        it = iter(gen)
        for _ in range(120):
            next(it)
        assert list(iter(gen)) == first
        assert list(iter(BusTraceGenerator(300, seed=5))) == first

    def test_different_seeds_diverge(self):
        assert list(SentenceGenerator(20, seed=1)) != list(SentenceGenerator(20, seed=2))
        assert list(BusTraceGenerator(20, seed=1)) != list(BusTraceGenerator(20, seed=2))
