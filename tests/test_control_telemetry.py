"""Telemetry alerts as first-class control-plane signals.

Covers the observe → diagnose path for ``slo-burning`` / ``metric-anomaly``
events, the detector-gated owner-loss scan, the non-blocking
:meth:`Controller.poll` mode, and event-log ordering under same-instant
emissions.
"""


from repro.bench.harness import build_scenario, saved_state
from repro.control import (
    ControlConfig,
    Controller,
    ControlPlane,
    PolicyRule,
    PolicyTable,
)
from repro.control.diagnose import diagnose
from repro.control.events import ControlEvent, EventLog, watch_detector
from repro.obs.anomaly import AnomalyDetector
from repro.obs.slo import SLO, BurnWindow, SLOEngine
from repro.obs.timeseries import TelemetryPipeline
from repro.util.sizes import MB


def controller_for(scenario, **kwargs):
    return Controller(ControlPlane.from_deployment(scenario), **kwargs)


def burning_engine(scenario, state=None):
    """An SLO engine whose backlog series is deep in violation *now*."""
    pipeline = TelemetryPipeline(scenario.sim)
    now = scenario.sim.now
    for i in range(10):
        pipeline.record("live.backlog", now - 0.9 + 0.1 * i, 500.0)
    engine = SLOEngine(pipeline)
    engine.add(
        SLO(
            name="backlog-drains",
            series="live.backlog",
            objective="le",
            threshold=200.0,
            budget=0.1,
            windows=(BurnWindow(long_s=3.0, short_s=1.0, burn_rate=4.0),),
            state=state,
        )
    )
    return pipeline, engine


class TestTelemetryDiagnosis:
    def test_slo_event_becomes_critical_diagnosis(self):
        sc = build_scenario(num_nodes=32, seed=11)
        event = ControlEvent(
            kind="slo-burning",
            at=4.5,
            state="app/state",
            attrs=(("severity", "critical"), ("slo", "backlog-drains")),
        )
        out = diagnose(ControlPlane.from_deployment(sc), [event])
        burning = [d for d in out if d.condition == "slo-burning"]
        assert len(burning) == 1
        d = burning[0]
        assert d.severity == "critical"
        assert d.detected_at == 4.5
        assert d.subject == "app/state"
        assert dict(d.evidence)["slo"] == "backlog-drains"

    def test_anomaly_event_defaults_to_warning(self):
        sc = build_scenario(num_nodes=32, seed=11)
        event = ControlEvent(kind="metric-anomaly", at=2.0, node="node-3")
        out = diagnose(ControlPlane.from_deployment(sc), [event])
        anomalous = [d for d in out if d.condition == "metric-anomaly"]
        assert len(anomalous) == 1
        assert anomalous[0].severity == "warning"
        assert anomalous[0].subject == "node-3"

    def test_detector_events_never_create_diagnoses(self):
        sc = build_scenario(num_nodes=32, seed=11)
        event = ControlEvent(kind="node-failed", at=1.0, node="node-1")
        out = diagnose(ControlPlane.from_deployment(sc), [event])
        assert out == []  # healthy world: the event alone proves nothing


class TestObserve:
    def test_observe_pumps_engine_and_anomalies(self):
        sc = build_scenario(num_nodes=32, seed=12)
        pipeline, engine = burning_engine(sc)
        for i in range(16):
            pipeline.record("tput", float(i), 100.0, kind="rate")
        pipeline.record("tput", 16.0, 5_000.0)
        anomalies = AnomalyDetector(pipeline, series=("tput",), window=16, min_points=8)
        ctl = controller_for(sc, slo_engine=engine, anomalies=anomalies)
        events = ctl.observe()
        kinds = sorted(e.kind for e in events)
        assert kinds == ["metric-anomaly", "slo-burning"]
        # The log keeps both for the report, and a re-observe is quiet.
        assert len(ctl.log) == 2
        assert ctl.observe() == []

    def test_latched_alert_does_not_reobserve(self):
        sc = build_scenario(num_nodes=32, seed=12)
        _, engine = burning_engine(sc)
        ctl = controller_for(sc, slo_engine=engine)
        assert [e.kind for e in ctl.observe()] == ["slo-burning"]
        assert ctl.observe() == []  # latched: the burn is still on, no re-page


class TestAlertTriggeredRemediation:
    def test_burning_slo_recovers_dead_owner(self):
        sc = build_scenario(num_nodes=32, seed=13)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        old_owner = registered.owner
        sc.overlay.fail_node(old_owner)
        _, engine = burning_engine(sc)
        # The only rule responds to the alert — the world scan's own
        # owner-lost diagnosis has no rule and must park, proving the
        # recovery was telemetry-triggered.
        policy = PolicyTable(
            rules=[
                PolicyRule(
                    condition="slo-burning",
                    action="recover-degraded",
                    params=(("mechanism", "star"),),
                )
            ]
        )
        ctl = controller_for(
            sc, policy=policy, slo_engine=engine,
            config=ControlConfig(verify_invariants=False),
        )
        alert_at = sc.sim.now
        records = ctl.run()
        assert [r.diagnosis.condition for r in records] == ["slo-burning"]
        record = records[0]
        assert record.action == "recover-degraded"
        assert record.verified
        assert record.diagnosis.detected_at == alert_at
        assert record.mttr_s is not None and record.mttr_s > 0
        assert registered.owner.alive
        assert registered.owner is not old_owner


class TestDetectorGating:
    class FakeDetector:
        """Duck-typed heartbeat detector: declaration is programmable."""

        def __init__(self, declared=None):
            self.on_failure = None
            self.declared = declared

        def detected_by_anyone(self, node):
            return self.declared

    def dead_owner_scenario(self, declared):
        sc = build_scenario(num_nodes=32, seed=14)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        sc.overlay.fail_node(registered.owner)
        detector = self.FakeDetector(declared)
        return sc, Controller(ControlPlane.from_deployment(sc, detector=detector))

    def test_undeclared_death_is_invisible(self):
        sc, ctl = self.dead_owner_scenario(declared=None)
        assert not any(d.condition == "owner-lost" for d in ctl.diagnose())

    def test_declared_death_is_dated_at_declaration(self):
        sc, ctl = self.dead_owner_scenario(declared=3.25)
        lost = [d for d in ctl.diagnose() if d.condition == "owner-lost"]
        assert len(lost) == 1
        assert lost[0].detected_at == 3.25

    def test_no_detector_reads_ground_truth(self):
        sc = build_scenario(num_nodes=32, seed=14)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        sc.overlay.fail_node(registered.owner)
        ctl = controller_for(sc)
        assert any(d.condition == "owner-lost" for d in ctl.diagnose())


class TestPollMode:
    def test_poll_begins_recovery_and_dates_mttr_at_landing(self):
        sc = build_scenario(num_nodes=32, seed=15)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        sc.overlay.fail_node(registered.owner)
        ctl = controller_for(sc, config=ControlConfig(verify_invariants=False))
        begun_states = []
        ctl.on_recovery_begun = lambda name, handle: begun_states.append(name)
        begun = ctl.poll()
        recoveries = [r for r in begun if r.diagnosis.condition == "owner-lost"]
        assert len(recoveries) == 1
        record = recoveries[0]
        assert record.attempts == 1 and not record.verified
        assert begun_states == ["app/state"]
        sc.sim.run_until_idle()
        assert record.landed_at is not None
        landed_at = record.landed_at
        # Let the clock move on past the landing before the sweep verifies,
        # so the test can see which instant MTTR is dated at.
        sc.sim.schedule(5.0, lambda: None)
        sc.sim.run_until_idle()
        assert sc.sim.now > landed_at
        ctl.sweep()
        assert record.verified
        assert record.resolved_at == landed_at
        assert record.mttr_s is not None and 0 < record.mttr_s < 5.0
        assert registered.owner.alive

    def test_poll_is_idempotent_while_open(self):
        sc = build_scenario(num_nodes=32, seed=16)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        sc.overlay.fail_node(registered.owner)
        ctl = controller_for(sc, config=ControlConfig(verify_invariants=False))
        first = ctl.poll()
        assert any(r.diagnosis.condition == "owner-lost" for r in first)
        assert ctl.poll() == []  # everything in flight or deferred: no dupes
        sc.sim.run_until_idle()
        ctl.sweep()
        lost = [r for r in ctl.records if r.diagnosis.condition == "owner-lost"]
        assert len(lost) == 1 and lost[0].verified

    def test_poll_defers_blocking_actions_to_sweep(self):
        sc = build_scenario(num_nodes=32, seed=17)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        holder = next(
            p.node for p in registered.plan.placements if p.node is not registered.owner
        )
        sc.overlay.fail_node(holder)
        ctl = controller_for(sc, config=ControlConfig(verify_invariants=False))
        assert ctl.poll() == []  # re-replicate blocks: deferred, not begun
        thin = [r for r in ctl.records if r.diagnosis.condition == "replica-thin"]
        assert len(thin) == 1 and thin[0].attempts == 0
        sc.sim.run_until_idle()
        ctl.sweep()
        assert thin[0].verified
        assert thin[0].attempts == 1
        for index in registered.plan.shard_indexes():
            assert len(registered.plan.providers_for(index)) >= registered.num_replicas

    def test_poll_parks_unmatched_diagnoses(self):
        sc = build_scenario(num_nodes=32, seed=18)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        sc.overlay.fail_node(registered.owner)
        ctl = controller_for(
            sc, policy=PolicyTable(), config=ControlConfig(verify_invariants=False)
        )
        assert ctl.poll() == []
        assert ctl.records == []
        assert ctl.poll() == []  # parked, not re-diagnosed forever


class TestEventLogSameInstant:
    def test_same_instant_events_keep_emit_order(self):
        log = EventLog()
        for node in ("c", "a", "b"):
            log.emit(ControlEvent(kind="node-failed", at=5.0, node=node))
        assert [e.node for e in log.drain()] == ["c", "a", "b"]
        log.emit(ControlEvent(kind="node-degraded", at=5.0, node="d"))
        log.emit(ControlEvent(kind="node-degraded", at=5.0, node="e"))
        assert [e.node for e in log.drain()] == ["d", "e"]
        assert [e.node for e in log.history()] == ["c", "a", "b", "d", "e"]

    def test_watch_detector_same_instant_duplicates_collapse(self):
        class Thing:
            def __init__(self, name):
                self.name = name

        chained = []
        detector = Thing("det")
        detector.on_failure = lambda watcher, member, at: chained.append(
            (watcher.name, member.name, at)
        )
        log = EventLog()
        watch_detector(detector, log)
        dead = Thing("node-9")
        other = Thing("node-4")
        # Two watchers declare the same member at the same instant, and a
        # third declares a different member at that instant too.
        detector.on_failure(Thing("w1"), dead, 7.0)
        detector.on_failure(Thing("w2"), dead, 7.0)
        detector.on_failure(Thing("w3"), other, 7.0)
        events = log.drain()
        assert [(e.node, e.at) for e in events] == [("node-9", 7.0), ("node-4", 7.0)]
        assert dict(events[0].attrs) == {"watcher": "w1"}  # first declaration wins
        # The pre-existing callback still saw every declaration.
        assert [c[0] for c in chained] == ["w1", "w2", "w3"]
