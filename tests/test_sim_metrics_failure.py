"""Unit tests for metrics primitives and the failure injector."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.failure import FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.metrics import Counter, MetricsRegistry, TimeSeries
from repro.sim.network import Network


class TestCounter:
    def test_totals_and_labels(self):
        c = Counter("bytes")
        c.add(10, "ping")
        c.add(5, "pong")
        c.add(3)
        assert c.total == 18
        assert c.get("ping") == 10
        assert c.labels() == {"ping": 10, "pong": 5}

    def test_monotonic(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)


class TestTimeSeries:
    def test_ordered_append(self):
        s = TimeSeries("t")
        s.record(1.0, 10.0)
        s.record(2.0, 20.0)
        assert s.values() == [10.0, 20.0]
        assert s.times() == [1.0, 2.0]
        assert s.last() == (2.0, 20.0)
        assert len(s) == 2

    def test_out_of_order_rejected(self):
        s = TimeSeries("t")
        s.record(2.0, 1.0)
        with pytest.raises(ValueError):
            s.record(1.0, 1.0)

    def test_value_at_step_lookup(self):
        s = TimeSeries("t")
        s.record(1.0, 10.0)
        s.record(5.0, 50.0)
        assert s.value_at(3.0) == 10.0
        assert s.value_at(5.0) == 50.0

    def test_value_before_first_point(self):
        s = TimeSeries("t")
        s.record(2.0, 1.0)
        with pytest.raises(ValueError):
            s.value_at(1.0)

    def test_empty_last(self):
        with pytest.raises(ValueError):
            TimeSeries("t").last()


class TestRegistry:
    def test_counters_are_singletons(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.series("b") is reg.series("b")
        assert set(reg.counters()) == {"a"}
        assert set(reg.all_series()) == {"b"}


class TestFailureInjector:
    def _setup(self):
        sim = Simulator()
        net = Network(sim)
        hosts = [net.add_host(f"h{i}") for i in range(5)]
        return sim, net, hosts

    def test_crash_fires_at_time(self):
        sim, net, hosts = self._setup()
        injector = FailureInjector(sim, net)
        crashed = []
        injector.crash_at(3.0, hosts[0], on_crash=lambda h: crashed.append(sim.now))
        sim.run_until_idle()
        assert crashed == [3.0]
        assert not hosts[0].alive
        assert len(injector.crashes()) == 1

    def test_crash_many_simultaneous(self):
        sim, net, hosts = self._setup()
        injector = FailureInjector(sim, net)
        injector.crash_many_at(1.0, hosts[:3])
        sim.run_until_idle()
        assert sum(1 for h in hosts if not h.alive) == 3

    def test_crash_in_past_rejected(self):
        sim, net, hosts = self._setup()
        sim.schedule(5.0, lambda: None)
        sim.run_until_idle()
        injector = FailureInjector(sim, net)
        with pytest.raises(SimulationError):
            injector.crash_at(1.0, hosts[0])

    def test_double_crash_recorded_once(self):
        sim, net, hosts = self._setup()
        injector = FailureInjector(sim, net)
        injector.crash_at(1.0, hosts[0])
        injector.crash_at(2.0, hosts[0])
        sim.run_until_idle()
        assert len(injector.crashes()) == 1

    def test_pick_victims_distinct(self):
        sim, net, hosts = self._setup()
        injector = FailureInjector(sim, net, rng=random.Random(1))
        victims = injector.pick_victims(hosts, 3)
        assert len({v.name for v in victims}) == 3

    def test_pick_victims_too_many(self):
        sim, net, hosts = self._setup()
        injector = FailureInjector(sim, net)
        with pytest.raises(SimulationError):
            injector.pick_victims(hosts, 10)

    def test_shard_loss_action_runs(self):
        sim, net, hosts = self._setup()
        injector = FailureInjector(sim, net)
        dropped = []
        injector.lose_shards_at(2.0, "app/state shard 3", lambda: dropped.append(1))
        sim.run_until_idle()
        assert dropped == [1]
        assert len(injector.shard_losses()) == 1
