"""Model-based (stateful) property test: StateStore behaves like a dict.

Hypothesis drives random sequences of put/get/delete/snapshot/restore
operations against both the store and a plain-dict model; any divergence
in contents, length, or size-accounting invariants is a bug.
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.state.store import StateStore

keys = st.text(min_size=1, max_size=6)
values = st.one_of(st.integers(), st.text(max_size=12), st.tuples(st.integers()))


class StateStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = StateStore("model/test")
        self.model = {}
        self.snapshots = []
        self.time = 0.0

    @rule(key=keys, value=values)
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        assert self.store.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=keys, default=values)
    def get(self, key, default):
        assert self.store.get(key, default) == self.model.get(key, default)

    @rule(key=keys)
    def update_counter(self, key):
        expected = (self.model.get(key) or 0) if isinstance(self.model.get(key), int) else 0
        result = self.store.update(key, lambda v: (v if isinstance(v, int) else 0) + 1)
        assert result == (expected if isinstance(self.model.get(key), int) else 0) + 1
        self.model[key] = result

    @rule()
    def snapshot(self):
        self.time += 1.0
        snap = self.store.snapshot(self.time)
        self.snapshots.append((snap, dict(self.model)))

    @precondition(lambda self: self.snapshots)
    @rule()
    def restore_latest(self):
        snap, contents = self.snapshots[-1]
        self.store.restore(snap)
        self.model = dict(contents)

    @invariant()
    def contents_match(self):
        assert dict(self.store.items()) == self.model
        assert len(self.store) == len(self.model)

    @invariant()
    def size_accounting_consistent(self):
        # Size is exactly the sum of per-entry estimates — no drift from
        # overwrites or deletes.
        from repro.state.store import estimate_entry_bytes

        expected = sum(estimate_entry_bytes(k, v) for k, v in self.model.items())
        assert self.store.size_bytes == expected

    @invariant()
    def snapshots_frozen(self):
        # Earlier snapshots never change, no matter what the store does.
        for snap, contents in self.snapshots:
            assert snap.as_dict() == contents


TestStateStoreModel = StateStoreMachine.TestCase
