"""Flamegraph export: collapsed stacks and speedscope documents."""

import json

import pytest

from repro.bench.harness import build_scenario, saved_state, timed_recovery
from repro.obs import (
    Tracer,
    collapsed_stacks,
    flamegraph_text,
    speedscope_document,
    write_flamegraph,
    write_speedscope,
)
from repro.recovery import StarRecovery
from repro.util.sizes import MB


def make_trace():
    """Root [0,10] with overlapping children [1,4] and [2,6], grandchild [2,3]."""
    tracer = Tracer("t")
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    root = tracer.start("recovery/star", category="recovery")
    a = tracer.record("fetch a", 1.0, 4.0, category="recovery.transfer", parent=root)
    tracer.record("flow", 2.0, 3.0, category="net.flow", parent=a)
    tracer.record("fetch b", 2.0, 6.0, category="recovery.transfer", parent=root)
    clock["now"] = 10.0
    root.finish()
    return tracer


def run_recovery(seed=7):
    tracer = Tracer("run")
    scenario = build_scenario(num_nodes=32, seed=seed, tracer=tracer)
    saved_state(scenario, "app/state", 64 * MB)
    timed_recovery(scenario, StarRecovery(), "app/state")
    return tracer


class TestSelfTime:
    def test_overlapping_children_subtract_once(self):
        stacks = collapsed_stacks(make_trace())
        # Children cover [1,6] (union), so the root's self time is 10-5=5.
        assert stacks["recovery/star"] == pytest.approx(5.0)
        # fetch a is covered [2,3] by its flow child: self time 2.
        assert stacks["recovery/star;fetch a"] == pytest.approx(2.0)
        assert stacks["recovery/star;fetch a;flow"] == pytest.approx(1.0)
        assert stacks["recovery/star;fetch b"] == pytest.approx(4.0)

    def test_total_self_time_counts_concurrency(self):
        # Fetches a and b overlap on [2,4], so total self-time exceeds the
        # 10s wall clock — flamegraph widths measure work, not elapsed time.
        stacks = collapsed_stacks(make_trace())
        assert sum(stacks.values()) == pytest.approx(12.0)

    def test_root_filter(self):
        tracer = make_trace()
        tracer.record("ping", 0.0, 1.0, category="overlay.maintenance")
        assert "ping" not in collapsed_stacks(tracer, root_filter="recovery")
        assert "ping" in collapsed_stacks(tracer, root_filter=None)


class TestFlamegraphText:
    def test_lines_are_integer_microseconds(self):
        text = flamegraph_text(make_trace())
        lines = text.strip().splitlines()
        assert lines == sorted(lines)
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert int(value) > 0
        assert "recovery/star;fetch b 4000000" in lines

    def test_multiple_tracers_get_name_prefix(self):
        text = flamegraph_text([make_trace(), make_trace()])
        assert all(line.startswith("t;") for line in text.strip().splitlines())

    def test_write_flamegraph(self, tmp_path):
        path = tmp_path / "flame.txt"
        write_flamegraph(str(path), make_trace())
        assert path.read_text() == flamegraph_text(make_trace())


class TestSpeedscope:
    def test_document_is_schema_consistent(self):
        doc = speedscope_document(make_trace())
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        frames = doc["shared"]["frames"]
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "seconds"
        assert len(profile["samples"]) == len(profile["weights"])
        for sample in profile["samples"]:
            assert sample  # no empty stacks
            for index in sample:
                assert 0 <= index < len(frames)
        assert profile["endValue"] == pytest.approx(sum(profile["weights"]))
        assert profile["startValue"] == 0

    def test_real_recovery_loads_as_valid_json(self, tmp_path):
        path = tmp_path / "prof.speedscope.json"
        write_speedscope(str(path), run_recovery())
        doc = json.loads(path.read_text())
        assert doc["profiles"][0]["samples"]
        frame_names = {f["name"] for f in doc["shared"]["frames"]}
        assert "recovery/star" in frame_names

    def test_same_seed_byte_identical(self, tmp_path):
        paths = []
        for i in range(2):
            path = tmp_path / f"s{i}.json"
            write_speedscope(str(path), run_recovery(seed=5))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_flamegraph_same_seed_byte_identical(self, tmp_path):
        paths = []
        for i in range(2):
            path = tmp_path / f"f{i}.txt"
            write_flamegraph(str(path), run_recovery(seed=5))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
