"""Unit tests for the statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    coefficient_of_variation,
    mean,
    median,
    normal_percentile_points,
    percentile,
    stdev,
    summarize,
)

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_stdev_constant(self):
        assert stdev([5, 5, 5]) == 0

    def test_stdev_known(self):
        assert stdev([2, 4]) == pytest.approx(1.0)

    def test_stdev_empty(self):
        with pytest.raises(ValueError):
            stdev([])


class TestPercentile:
    def test_bounds(self):
        data = [1, 2, 3, 4, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5

    def test_single_value(self):
        assert percentile([7], 99) == 7

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(samples, st.floats(min_value=0, max_value=100))
    def test_within_min_max(self, data, pct):
        p = percentile(data, pct)
        assert min(data) <= p <= max(data)

    @given(samples)
    def test_monotone_in_pct(self, data):
        assert percentile(data, 25) <= percentile(data, 75)


class TestSummary:
    def test_summary_fields(self):
        s = summarize([1, 2, 3, 4])
        assert s.count == 4
        assert s.minimum == 1
        assert s.maximum == 4
        assert s.p50 == 2.5

    def test_as_dict_keys(self):
        d = summarize([1.0]).as_dict()
        assert set(d) == {"count", "mean", "stdev", "min", "p50", "p95", "p99", "max"}

    def test_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestNormalPercentiles:
    def test_points_sorted_and_probabilities(self):
        points = normal_percentile_points([3, 1, 2])
        assert [v for v, _ in points] == [1, 2, 3]
        probs = [p for _, p in points]
        assert probs == pytest.approx([1 / 6, 3 / 6, 5 / 6])

    def test_empty(self):
        with pytest.raises(ValueError):
            normal_percentile_points([])


class TestCoV:
    def test_uniform_is_zero(self):
        assert coefficient_of_variation([4, 4, 4]) == 0

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([-1, 1])

    def test_known_value(self):
        assert coefficient_of_variation([2, 4]) == pytest.approx(1 / 3)


class TestPercentileEdgeCases:
    def test_nan_pct_rejected(self):
        with pytest.raises(ValueError):
            percentile([1, 2, 3], float("nan"))

    def test_exact_endpoints_no_interpolation(self):
        data = [3.0, 1.0, 2.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 3.0

    def test_unsorted_input(self):
        assert percentile([9, 1, 5], 50) == 5


class TestPercentiles:
    def test_matches_percentile_pointwise(self):
        from repro.util.stats import percentiles

        data = [5.0, 1.0, 9.0, 3.0, 7.0]
        points = percentiles(data, (0.0, 25.0, 50.0, 99.0, 100.0))
        for pct, value in points.items():
            assert value == percentile(data, pct)

    def test_empty_values_rejected(self):
        from repro.util.stats import percentiles

        with pytest.raises(ValueError):
            percentiles([], (50.0,))

    def test_out_of_range_pct_rejected(self):
        from repro.util.stats import percentiles

        with pytest.raises(ValueError):
            percentiles([1.0], (50.0, 101.0))

    def test_single_element(self):
        from repro.util.stats import percentiles

        assert percentiles([4.0], (0.0, 50.0, 100.0)) == {
            0.0: 4.0,
            50.0: 4.0,
            100.0: 4.0,
        }
