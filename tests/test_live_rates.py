"""Rate curves: shapes, composition, integration, declarative specs."""

import pytest

from repro.errors import WorkloadError
from repro.live.rates import (
    ConstantRate,
    DiurnalRate,
    FlashCrowd,
    RateCurve,
    rate_curve_from_dict,
)


class TestConstantRate:
    def test_flat(self):
        curve = ConstantRate(250.0)
        assert curve.rate_at(0.0) == 250.0
        assert curve.rate_at(1e6) == 250.0

    def test_events_between_exact(self):
        curve = ConstantRate(100.0)
        assert curve.events_between(2.0, 5.5) == pytest.approx(350.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(WorkloadError):
            ConstantRate(-1.0)

    def test_reversed_interval_rejected(self):
        with pytest.raises(WorkloadError):
            ConstantRate(10.0).events_between(5.0, 4.0)


class TestDiurnalRate:
    def test_period_peaks_and_troughs(self):
        curve = DiurnalRate(100.0, amplitude=0.5, period=40.0)
        assert curve.rate_at(0.0) == pytest.approx(100.0)
        assert curve.rate_at(10.0) == pytest.approx(150.0)  # quarter period
        assert curve.rate_at(30.0) == pytest.approx(50.0)  # three quarters

    def test_clamped_at_zero(self):
        curve = DiurnalRate(100.0, amplitude=2.0, period=40.0)
        assert curve.rate_at(30.0) == 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            DiurnalRate(-1.0)
        with pytest.raises(WorkloadError):
            DiurnalRate(10.0, period=0.0)


class TestFlashCrowd:
    def test_piecewise_shape(self):
        curve = FlashCrowd(base=100.0, peak=1000.0, at=10.0, ramp=4.0, hold=6.0, decay=8.0)
        assert curve.rate_at(0.0) == 100.0
        assert curve.rate_at(12.0) == pytest.approx(550.0)  # mid-ramp
        assert curve.rate_at(15.0) == 1000.0  # plateau
        assert curve.rate_at(24.0) == pytest.approx(550.0)  # mid-decay
        assert curve.rate_at(60.0) == 100.0

    def test_peak_below_base_rejected(self):
        with pytest.raises(WorkloadError):
            FlashCrowd(base=100.0, peak=50.0, at=5.0)


class TestComposition:
    def test_sum_and_scale(self):
        curve = ConstantRate(100.0) + ConstantRate(50.0)
        assert curve.rate_at(3.0) == pytest.approx(150.0)
        doubled = 2.0 * curve
        assert doubled.rate_at(3.0) == pytest.approx(300.0)
        assert doubled.events_between(0.0, 2.0) == pytest.approx(600.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(WorkloadError):
            ConstantRate(10.0) * -2.0


class TestFromDict:
    def test_constant(self):
        curve = rate_curve_from_dict({"kind": "constant", "rate": 200})
        assert isinstance(curve, ConstantRate)
        assert curve.rate == 200.0

    def test_flash_with_defaults(self):
        curve = rate_curve_from_dict(
            {"kind": "flash", "base": 100, "peak": 900, "at": 5}
        )
        assert isinstance(curve, FlashCrowd)
        assert curve.ramp == 5.0

    def test_sum_composes(self):
        curve = rate_curve_from_dict(
            {
                "kind": "sum",
                "parts": [
                    {"kind": "constant", "rate": 10},
                    {"kind": "constant", "rate": 20},
                ],
            }
        )
        assert curve.rate_at(0.0) == pytest.approx(30.0)

    def test_scaled(self):
        curve = rate_curve_from_dict(
            {"kind": "scaled", "curve": {"kind": "constant", "rate": 10}, "factor": 3}
        )
        assert curve.rate_at(0.0) == pytest.approx(30.0)

    def test_errors(self):
        with pytest.raises(WorkloadError):
            rate_curve_from_dict({"kind": "nope"})
        with pytest.raises(WorkloadError):
            rate_curve_from_dict({"kind": "constant"})
        with pytest.raises(WorkloadError):
            rate_curve_from_dict({"kind": "sum", "parts": []})
        with pytest.raises(WorkloadError):
            rate_curve_from_dict("constant")


class TestMidpointIntegration:
    def test_midpoint_rule_on_linear_segment_is_exact(self):
        curve = FlashCrowd(base=0.0, peak=100.0, at=0.0, ramp=10.0, hold=0.0, decay=0.0)
        # Linear ramp from 0 to 100 over [0, 10]: integral is 500.
        assert curve.events_between(0.0, 10.0) == pytest.approx(500.0)

    def test_base_class_requires_rate_at(self):
        with pytest.raises(NotImplementedError):
            RateCurve().rate_at(0.0)
