"""Unit tests for the 128-bit id space helpers."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util.ids import (
    ID_BITS,
    ID_SPACE,
    NodeId,
    closest_id,
    node_id_from_bytes,
    node_id_from_name,
    random_node_id,
    ring_between,
    shard_key,
)

ids = st.integers(min_value=0, max_value=ID_SPACE - 1).map(NodeId)


class TestNodeIdBasics:
    def test_value_roundtrip(self):
        assert int(NodeId(42)) == 42

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            NodeId(-1)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            NodeId(ID_SPACE)

    def test_hex_is_32_digits(self):
        assert len(NodeId(1).hex()) == 32
        assert NodeId(255).hex().endswith("ff")

    def test_ordering(self):
        assert NodeId(1) < NodeId(2)
        assert NodeId(2) >= NodeId(1)

    def test_hashable_and_equal(self):
        assert NodeId(7) == NodeId(7)
        assert len({NodeId(7), NodeId(7), NodeId(8)}) == 2


class TestDigits:
    def test_digit_count_default(self):
        assert len(NodeId(0).digits()) == ID_BITS // 4

    def test_digits_msb_first(self):
        # Highest hex digit of a value with only the top nibble set.
        top = NodeId(0xF << (ID_BITS - 4))
        assert top.digits()[0] == 0xF
        assert all(d == 0 for d in top.digits()[1:])

    def test_digits_base_2(self):
        assert len(NodeId(0).digits(1)) == ID_BITS

    def test_invalid_digit_width(self):
        with pytest.raises(ValueError):
            NodeId(0).digits(5)

    @given(ids)
    def test_digits_reassemble(self, node_id):
        digits = node_id.digits(4)
        value = 0
        for d in digits:
            value = (value << 4) | d
        assert value == node_id.value

    @given(ids, st.sampled_from([1, 2, 4, 8]))
    def test_digits_match_shift_reference(self, node_id, bits):
        count = ID_BITS // bits
        mask = (1 << bits) - 1
        reference = tuple(
            (node_id.value >> (ID_BITS - bits * (i + 1))) & mask
            for i in range(count)
        )
        assert node_id.digits(bits) == reference
        # Memoized second call returns the identical tuple.
        assert node_id.digits(bits) == reference

    @given(ids, st.sampled_from([1, 2, 4, 8]))
    def test_single_digit_matches_digits_tuple(self, node_id, bits):
        digits = node_id.digits(bits)
        assert all(
            node_id.digit(i, bits) == digits[i] for i in range(len(digits))
        )


class TestPrefixAndDistance:
    def test_shared_prefix_full(self):
        a = NodeId(12345)
        assert a.shared_prefix_length(a) == ID_BITS // 4

    def test_shared_prefix_zero(self):
        a = NodeId(0)
        b = NodeId(0xF << (ID_BITS - 4))
        assert a.shared_prefix_length(b) == 0

    @given(ids, ids, st.sampled_from([1, 2, 4, 8]))
    def test_shared_prefix_matches_digit_comparison(self, a, b, bits):
        a_digits = a.digits(bits)
        b_digits = b.digits(bits)
        expected = 0
        for x, y in zip(a_digits, b_digits):
            if x != y:
                break
            expected += 1
        assert a.shared_prefix_length(b, bits) == expected

    def test_shared_prefix_last_bit_differs(self):
        a = NodeId(0)
        assert a.shared_prefix_length(NodeId(1), 4) == ID_BITS // 4 - 1
        assert a.shared_prefix_length(NodeId(1), 1) == ID_BITS - 1

    @given(ids, ids)
    def test_distance_symmetry(self, a, b):
        assert a.distance(b) == b.distance(a)

    @given(ids)
    def test_distance_to_self_zero(self, a):
        assert a.distance(a) == 0

    @given(ids, ids)
    def test_distance_at_most_half_ring(self, a, b):
        assert a.distance(b) <= ID_SPACE // 2

    @given(ids, ids)
    def test_clockwise_distances_sum_to_ring(self, a, b):
        if a != b:
            assert a.clockwise_distance(b) + b.clockwise_distance(a) == ID_SPACE

    def test_wraparound_distance(self):
        a = NodeId(0)
        b = NodeId(ID_SPACE - 1)
        assert a.distance(b) == 1


class TestDerivedIds:
    def test_from_name_deterministic(self):
        assert node_id_from_name("x") == node_id_from_name("x")

    def test_from_name_distinct(self):
        assert node_id_from_name("x") != node_id_from_name("y")

    def test_from_bytes_matches_name(self):
        assert node_id_from_bytes(b"abc") == node_id_from_name("abc")

    def test_random_is_seed_deterministic(self):
        assert random_node_id(random.Random(5)) == random_node_id(random.Random(5))

    def test_shard_key_varies_by_replica(self):
        a = shard_key("app", "state", 0, 0)
        b = shard_key("app", "state", 0, 1)
        assert a != b

    def test_shard_key_varies_by_index(self):
        assert shard_key("app", "s", 0, 0) != shard_key("app", "s", 1, 0)


class TestRingHelpers:
    def test_ring_between_simple(self):
        assert ring_between(NodeId(10), NodeId(20), NodeId(30))
        assert not ring_between(NodeId(10), NodeId(40), NodeId(30))

    def test_ring_between_wraparound(self):
        low = NodeId(ID_SPACE - 5)
        high = NodeId(5)
        assert ring_between(low, NodeId(1), high)
        assert not ring_between(low, NodeId(100), high)

    def test_ring_between_degenerate(self):
        assert ring_between(NodeId(7), NodeId(123), NodeId(7))

    def test_closest_id(self):
        target = NodeId(100)
        pool = [NodeId(90), NodeId(105), NodeId(300)]
        assert closest_id(target, pool) == NodeId(105)

    def test_closest_id_empty_pool(self):
        with pytest.raises(ValueError):
            closest_id(NodeId(1), [])

    @given(ids, st.lists(ids, min_size=1, max_size=10))
    def test_closest_id_is_minimal(self, target, pool):
        best = closest_id(target, pool)
        assert all(target.distance(best) <= target.distance(c) for c in pool)
