"""Per-host network telemetry: utilization timelines and queueing stats."""

import json

import pytest

from repro.sim.kernel import Simulator
from repro.sim.network import Network


def two_host_net(up_bw=100.0, down_bw=100.0):
    sim = Simulator()
    net = Network(sim)
    a = net.add_host("a", up_bw=up_bw, down_bw=down_bw, latency=0.0)
    b = net.add_host("b", up_bw=up_bw, down_bw=down_bw, latency=0.0)
    return sim, net, a, b


class TestUtilizationSeries:
    def test_single_flow_saturates_and_drains(self):
        sim, net, a, b = two_host_net()
        net.transfer(a, b, 1000.0)
        sim.run_until_idle()
        up = sim.metrics.series("net.host.a.up_util")
        down = sim.metrics.series("net.host.b.down_util")
        assert 1.0 in up.values()  # saturated while transferring
        assert up.values()[-1] == 0.0  # closed out after the flow drained
        assert down.values()[-1] == 0.0
        flows = sim.metrics.series("net.host.a.flows")
        assert flows.values()[0] == 1.0
        assert flows.values()[-1] == 0.0

    def test_fair_share_shows_up_in_utilization(self):
        sim, net, a, b = two_host_net()
        c = net.add_host("c", up_bw=100.0, down_bw=100.0, latency=0.0)
        # Two flows into b: b's downlink is the bottleneck, each sender
        # gets half of it, so each uplink sits at 50%.
        net.transfer(a, b, 1000.0)
        net.transfer(c, b, 1000.0)
        sim.run_until_idle()
        assert 0.5 in sim.metrics.series("net.host.a.up_util").values()
        assert 1.0 in sim.metrics.series("net.host.b.down_util").values()

    def test_unconstrained_hosts_record_zero(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add_host("a", latency=0.0)  # infinite bandwidth
        b = net.add_host("b", latency=0.0)
        net.transfer(a, b, 1000.0)
        sim.run_until_idle()
        assert set(sim.metrics.series("net.host.a.up_util").values()) == {0.0}

    def test_global_active_flow_series_returns_to_zero(self):
        sim, net, a, b = two_host_net()
        net.transfer(a, b, 500.0)
        net.transfer(b, a, 500.0)
        sim.run_until_idle()
        active = sim.metrics.series("net.flows_active")
        assert max(active.values()) == 2.0
        assert active.values()[-1] == 0.0


class TestQueueingStats:
    def test_queue_wait_is_propagation_latency(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add_host("a", up_bw=100.0, down_bw=100.0, latency=0.25)
        b = net.add_host("b", up_bw=100.0, down_bw=100.0, latency=0.25)
        net.transfer(a, b, 100.0)
        sim.run_until_idle()
        wait = sim.metrics.histogram("net.flow_queue_wait")
        assert wait.count == 1
        assert wait.mean == pytest.approx(0.5)

    def test_stall_measures_sharing_delay(self):
        sim, net, a, b = two_host_net()
        c = net.add_host("c", up_bw=100.0, down_bw=100.0, latency=0.0)
        net.transfer(a, b, 1000.0)  # alone: 10s; sharing b's downlink: slower
        net.transfer(c, b, 1000.0)
        sim.run_until_idle()
        stall = sim.metrics.histogram("net.flow_stall_s")
        assert stall.count == 2
        assert stall.max > 0.0

    def test_solo_flow_has_no_stall(self):
        sim, net, a, b = two_host_net()
        net.transfer(a, b, 1000.0)
        sim.run_until_idle()
        stall = sim.metrics.histogram("net.flow_stall_s")
        assert stall.count == 1
        assert stall.max == pytest.approx(0.0, abs=1e-9)


class TestAbortPaths:
    def test_failed_host_closes_out_series(self):
        sim, net, a, b = two_host_net()
        net.transfer(a, b, 10_000.0)
        sim.run(until=5.0)
        net.fail_host(b)
        sim.run_until_idle()
        assert sim.metrics.series("net.host.a.up_util").values()[-1] == 0.0
        assert sim.metrics.series("net.flows_active").values()[-1] == 0.0


class TestDeterminism:
    @staticmethod
    def run_mesh(seed):
        import random

        rng = random.Random(seed)
        sim = Simulator()
        net = Network(sim)
        hosts = [
            net.add_host(f"h{i}", up_bw=100.0, down_bw=100.0, latency=0.001)
            for i in range(6)
        ]
        for _ in range(12):
            src, dst = rng.sample(hosts, 2)
            sim.schedule(
                rng.uniform(0, 2),
                lambda s=src, d=dst: net.transfer(s, d, rng.uniform(100, 2000)),
            )
        sim.run_until_idle()
        return json.dumps(sim.metrics.dump(), sort_keys=True)

    def test_same_seed_byte_identical_series(self):
        assert self.run_mesh(3) == self.run_mesh(3)

    def test_different_seeds_differ(self):
        assert self.run_mesh(3) != self.run_mesh(4)
