"""Unit and property tests for shards, partitioning, and merging."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    IntegrityError,
    ShardError,
    VersionConflictError,
)
from repro.state.partitioner import (
    check_reconstruction_set,
    merge_shards,
    partition_snapshot,
    partition_synthetic,
    replicate,
    shard_index_for_key,
)
from repro.state.shard import ReplicaKey, Shard, ShardReplica
from repro.state.store import StateSnapshot
from repro.state.version import StateVersion

V1 = StateVersion(1.0, 1)


def snapshot_of(entries):
    return StateSnapshot("app/state", entries, V1)


state_dicts = st.dictionaries(
    st.text(min_size=1, max_size=8), st.integers(), min_size=0, max_size=60
)


class TestShardIndex:
    def test_stable(self):
        assert shard_index_for_key("k", 8) == shard_index_for_key("k", 8)

    def test_in_range(self):
        for key in range(100):
            assert 0 <= shard_index_for_key(key, 7) < 7

    def test_invalid_count(self):
        with pytest.raises(ShardError):
            shard_index_for_key("k", 0)


class TestPartition:
    def test_all_entries_covered_once(self):
        entries = {f"k{i}": i for i in range(100)}
        shards = partition_snapshot(snapshot_of(entries), 8)
        assert len(shards) == 8
        merged = {}
        for shard in shards:
            for key, value in shard.entries.items():
                assert key not in merged
                merged[key] = value
        assert merged == entries

    def test_key_lands_in_stable_shard(self):
        entries = {f"k{i}": i for i in range(50)}
        shards = partition_snapshot(snapshot_of(entries), 4)
        for shard in shards:
            for key in shard.entries:
                assert shard_index_for_key(key, 4) == shard.index

    @given(state_dicts, st.integers(min_value=1, max_value=12))
    @settings(max_examples=50)
    def test_partition_merge_roundtrip(self, entries, num_shards):
        snapshot = snapshot_of(entries)
        merged = merge_shards(partition_snapshot(snapshot, num_shards))
        assert merged.as_dict() == entries
        assert merged.version == V1

    def test_synthetic_sizes_sum(self):
        shards = partition_synthetic("s", 1000, 7, V1)
        assert sum(s.size_bytes for s in shards) == 1000
        assert max(s.size_bytes for s in shards) - min(s.size_bytes for s in shards) <= 1

    def test_synthetic_merge_reports_bytes(self):
        shards = partition_synthetic("s", 1000, 4, V1)
        merged = merge_shards(shards)
        assert merged.size_bytes == 1000

    def test_invalid_shard_count(self):
        with pytest.raises(ShardError):
            partition_snapshot(snapshot_of({}), 0)
        with pytest.raises(ShardError):
            partition_synthetic("s", 10, 0, V1)


class TestShard:
    def test_requires_payload_or_size(self):
        with pytest.raises(ShardError):
            Shard("s", 0, 1, V1)

    def test_index_bounds(self):
        with pytest.raises(ShardError):
            Shard("s", 3, 3, V1, entries={})

    def test_checksum_detects_tampering(self):
        shard = Shard("s", 0, 1, V1, entries={"a": 1})
        assert shard.verify()
        shard.entries["a"] = 2
        assert not shard.verify()

    def test_synthetic_flag(self):
        assert Shard.synthetic_shard("s", 0, 1, V1, 10).synthetic
        assert not Shard("s", 0, 1, V1, entries={}).synthetic

    def test_sub_shards_cover_entries(self):
        shard = Shard("s", 0, 1, V1, entries={f"k{i}": i for i in range(10)})
        subs = shard.sub_shards(3)
        assert len(subs) == 3
        combined = {}
        for sub in subs:
            combined.update(sub.entries)
        assert combined == shard.entries

    def test_sub_shards_synthetic_sizes(self):
        shard = Shard.synthetic_shard("s", 0, 1, V1, 100)
        subs = shard.sub_shards(3)
        assert sum(s.size_bytes for s in subs) == 100

    def test_sub_shard_count_invalid(self):
        shard = Shard.synthetic_shard("s", 0, 1, V1, 10)
        with pytest.raises(ShardError):
            shard.sub_shards(0)


class TestReplicas:
    def test_replicate_counts(self):
        shards = partition_synthetic("s", 100, 4, V1)
        replicas = replicate(shards, 3)
        assert len(replicas) == 12
        keys = {r.key for r in replicas}
        assert len(keys) == 12

    def test_replica_key_repr(self):
        shard = Shard.synthetic_shard("s", 2, 4, V1, 10)
        replica = ShardReplica(shard, 1, 2)
        assert replica.key == ReplicaKey("s", 2, 1)
        assert replica.size_bytes == 10

    def test_replica_index_bounds(self):
        shard = Shard.synthetic_shard("s", 0, 1, V1, 10)
        with pytest.raises(ShardError):
            ShardReplica(shard, 2, 2)

    def test_replicate_invalid(self):
        with pytest.raises(ShardError):
            replicate(partition_synthetic("s", 10, 2, V1), 0)


class TestReconstructionChecks:
    def test_missing_shard_detected(self):
        shards = partition_synthetic("s", 100, 4, V1)
        with pytest.raises(ShardError, match="missing"):
            merge_shards(shards[:3])

    def test_duplicate_index_detected(self):
        shards = partition_synthetic("s", 100, 4, V1)
        with pytest.raises(ShardError):
            check_reconstruction_set([shards[0], shards[0], shards[2], shards[3]])

    def test_mixed_versions_rejected(self):
        a = partition_synthetic("s", 100, 2, V1)
        b = partition_synthetic("s", 100, 2, StateVersion(2.0, 2))
        with pytest.raises(VersionConflictError):
            merge_shards([a[0], b[1]])

    def test_mixed_states_rejected(self):
        a = partition_synthetic("s1", 100, 2, V1)
        b = partition_synthetic("s2", 100, 2, V1)
        with pytest.raises(ShardError):
            merge_shards([a[0], b[1]])

    def test_mixed_synthetic_and_real_rejected(self):
        real = partition_snapshot(snapshot_of({"a": 1}), 2)
        synthetic = partition_synthetic("app/state", 100, 2, V1)
        with pytest.raises(ShardError):
            merge_shards([real[0], synthetic[1]])

    def test_corrupt_shard_rejected_at_merge(self):
        shards = partition_snapshot(snapshot_of({"a": 1, "b": 2, "c": 3}), 2)
        target = next(s for s in shards if s.entries)
        key = next(iter(target.entries))
        target.entries[key] = 999
        with pytest.raises(IntegrityError):
            merge_shards(shards)

    def test_empty_set_rejected(self):
        with pytest.raises(ShardError):
            merge_shards([])
