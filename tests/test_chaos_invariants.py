"""Tests for the chain-checksum invariant checker."""

import types

from repro.bench.harness import saved_delta
from repro.chaos.campaign import RunContext
from repro.chaos.invariants import DEFAULT_CHECKERS, ChainChecksumConsistent
from repro.state.chain import chain_digest


def ground_truth(world, name="app/state"):
    """The same chain-level snapshot ChaosEngine.setup_states captures."""
    registered = world.manager.states[name]
    chain = registered.chain
    return {
        name: {
            "digest": chain_digest(registered.plan.available_shards()),
            "chain_length": chain.length,
            "size_bytes": world.manager.recovered_snapshot(name).size_bytes,
            "version": repr(chain.tip_version),
        }
    }


def make_run(world, pre_state, mechanism="star"):
    engine = types.SimpleNamespace(manager=world.manager, overlay=world.overlay)
    return RunContext(
        scenario=None,
        mechanism=mechanism,
        engine=engine,
        results={name: None for name in pre_state},
        errors=[],
        pre_checksums={},
        pre_state=pre_state,
    )


def chained_state(world, rounds=2):
    world.save_synthetic()
    for _ in range(rounds):
        saved_delta(world, "app/state", 64 * 1024)
    return ground_truth(world)


class TestChainChecksumConsistent:
    def test_registered_by_default(self):
        assert any(
            isinstance(checker, ChainChecksumConsistent)
            for checker in DEFAULT_CHECKERS
        )

    def test_clean_chain_passes(self, world):
        pre_state = chained_state(world)
        run = make_run(world, pre_state)
        assert ChainChecksumConsistent().check(run) == []

    def test_passes_after_recovery(self, world):
        pre_state = chained_state(world)
        world.fail_owner("app/state")
        world.manager.run([world.manager.recover("app/state")])
        run = make_run(world, pre_state)
        assert ChainChecksumConsistent().check(run) == []

    def test_tampered_segment_detected(self, world):
        pre_state = chained_state(world)
        registered = world.manager.states["app/state"]
        victim = registered.chain.links[1].shards[0]
        victim.checksum = "0" * 64
        violations = ChainChecksumConsistent().check(make_run(world, pre_state))
        assert violations
        assert "chain digest drifted" in violations[0]

    def test_truncated_chain_detected(self, world):
        pre_state = chained_state(world)
        registered = world.manager.states["app/state"]
        for placed in registered.chain.links[1].plan.placements:
            placed.node.drop_shard(placed.replica.key)
        violations = ChainChecksumConsistent().check(make_run(world, pre_state))
        assert violations
        assert "chain reconstruction failed" in violations[0]

    def test_checkpointing_runs_skipped(self, world):
        pre_state = chained_state(world)
        run = make_run(world, pre_state, mechanism="checkpointing")
        assert ChainChecksumConsistent().check(run) == []
