"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, fired.append, name)
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [5.5]
        assert sim.now == 5.5

    def test_args_passed(self):
        sim = Simulator()
        got = []
        sim.schedule(0.0, lambda a, b: got.append((a, b)), 1, 2)
        sim.run_until_idle()
        assert got == [(1, 2)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        times = []
        sim.schedule_at(4.0, lambda: times.append(sim.now))
        sim.run_until_idle()
        assert times == [4.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run_until_idle()
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run_until_idle()
        assert fired == []

    def test_cancel_none_is_noop(self):
        Simulator().cancel(None)

    def test_double_cancel_is_harmless(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        sim.run_until_idle()

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(event)
        assert sim.pending == 1


class TestFastPaths:
    """The O(1) pending counter, lazy compaction, and zero-delay batch."""

    def test_pending_counter_tracks_mixed_schedule_and_cancel(self):
        sim = Simulator()
        events = [sim.schedule(float(i % 3), lambda: None) for i in range(20)]
        assert sim.pending == 20
        for event in events[::2]:
            sim.cancel(event)
        assert sim.pending == 10
        # Double-cancel and cancel-after-run must not double-decrement.
        sim.cancel(events[0])
        assert sim.pending == 10
        sim.run_until_idle()
        assert sim.pending == 0
        for event in events:
            sim.cancel(event)
        assert sim.pending == 0

    def test_compaction_preserves_order_and_pending(self):
        sim = Simulator()
        fired = []
        keep = []
        cancelled = []
        for i in range(300):
            event = sim.schedule(float(i), fired.append, i)
            (keep if i % 4 == 0 else cancelled).append((i, event))
        # Cancelling >64 events where most of the queue is dead triggers
        # the lazy heap compaction.
        for _, event in cancelled:
            sim.cancel(event)
        assert sim.pending == len(keep)
        sim.run_until_idle()
        assert fired == [i for i, _ in keep]
        assert sim.pending == 0

    def test_zero_delay_batch_runs_in_schedule_order(self):
        sim = Simulator()
        fired = []

        def cascade(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(0.0, cascade, depth + 1)

        sim.schedule(0.0, fired.append, "a")
        sim.schedule(0.0, cascade, 0)
        sim.schedule(0.0, fired.append, "b")
        sim.run_until_idle()
        assert fired == ["a", 0, "b", 1, 2, 3]

    def test_zero_delay_batch_interleaves_with_heap_ties(self):
        """schedule(0.0, ...) and schedule_at(now, ...) at the same instant
        still fire in overall schedule (seq) order."""
        sim = Simulator()
        fired = []

        def at_one():
            sim.schedule(0.0, fired.append, "batch1")
            sim.schedule_at(1.0, fired.append, "heap1")
            sim.schedule(0.0, fired.append, "batch2")
            sim.schedule_at(1.0, fired.append, "heap2")

        sim.schedule(1.0, at_one)
        sim.run_until_idle()
        assert fired == ["batch1", "heap1", "batch2", "heap2"]

    def test_cancel_zero_delay_event(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(0.0, fired.append, 1)
        sim.schedule(0.0, fired.append, 2)
        sim.cancel(event)
        assert sim.pending == 1
        sim.run_until_idle()
        assert fired == [2]

    def test_run_until_respects_pending_zero_delay_work(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: sim.schedule(0.0, fired.append, "late"))
        sim.run(until=1.0)
        assert fired == []
        sim.run_until_idle()
        assert fired == ["late"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_can_resume(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        sim.run_until_idle()
        assert fired == [1, 2]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(0.0, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 5

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=100)

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def inner():
            try:
                sim.run_until_idle()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(0.0, inner)
        sim.run_until_idle()
        assert len(errors) == 1
