"""Unit and property tests for the Bloom filter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.bloom import BloomFilter


class TestConstruction:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BloomFilter(0)

    def test_rejects_bad_error_rate(self):
        with pytest.raises(ValueError):
            BloomFilter(10, error_rate=0.0)
        with pytest.raises(ValueError):
            BloomFilter(10, error_rate=1.0)

    def test_geometry_scales_with_capacity(self):
        small = BloomFilter(100)
        large = BloomFilter(10_000)
        assert large.num_bits > small.num_bits


class TestMembership:
    def test_added_items_are_members(self):
        bloom = BloomFilter(1000)
        bloom.add("hello")
        assert "hello" in bloom

    def test_fresh_filter_is_empty(self):
        bloom = BloomFilter(1000)
        assert "anything" not in bloom
        assert len(bloom) == 0

    def test_add_reports_duplicates(self):
        bloom = BloomFilter(1000)
        assert bloom.add("x") is False
        assert bloom.add("x") is True
        assert len(bloom) == 1

    def test_update_bulk(self):
        bloom = BloomFilter(1000)
        bloom.update(f"item-{i}" for i in range(50))
        assert len(bloom) == 50
        assert all(f"item-{i}" in bloom for i in range(50))

    @given(st.lists(st.text(min_size=1), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_no_false_negatives(self, items):
        bloom = BloomFilter(1000)
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_false_positive_rate_near_design(self):
        bloom = BloomFilter(5000, error_rate=0.01)
        for i in range(5000):
            bloom.add(f"member-{i}")
        false_hits = sum(1 for i in range(10_000) if f"other-{i}" in bloom)
        assert false_hits / 10_000 < 0.05  # generous bound over the 1% design


class TestSerialization:
    def test_roundtrip(self):
        bloom = BloomFilter(500, error_rate=0.02)
        bloom.update(f"k{i}" for i in range(100))
        clone = BloomFilter.from_bytes(bloom.to_bytes())
        assert len(clone) == 100
        assert all(f"k{i}" in clone for i in range(100))
        assert clone.num_bits == bloom.num_bits

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"short")

    def test_corrupt_length_rejected(self):
        data = BloomFilter(100).to_bytes()
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(data[:-3])


class TestMerge:
    def test_union_semantics(self):
        a = BloomFilter(1000)
        b = BloomFilter(1000)
        a.add("only-a")
        b.add("only-b")
        a.merge(b)
        assert "only-a" in a and "only-b" in a

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(100).merge(BloomFilter(10_000))

    def test_fill_ratio_monotonic(self):
        bloom = BloomFilter(1000)
        empty_fill = bloom.fill_ratio
        bloom.update(f"x{i}" for i in range(500))
        assert bloom.fill_ratio > empty_fill
