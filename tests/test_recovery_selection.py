"""Unit tests for the Fig. 7 mechanism-selection heuristic."""

import pytest

from repro.errors import SelectionError
from repro.recovery.line import LineRecovery
from repro.recovery.selection import (
    ComputationModel,
    Mechanism,
    SelectionInputs,
    build_mechanism,
    recommended_path_length,
    recommended_tree_fanout_bits,
    select_mechanism,
)
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.util.sizes import MB


class TestDecisionDiagram:
    def test_stateless_needs_no_recovery(self):
        inputs = SelectionInputs(state_bytes=64 * MB, stateful=False)
        assert select_mechanism(inputs) is Mechanism.NONE

    def test_small_state_prefers_star(self):
        inputs = SelectionInputs(state_bytes=8 * MB)
        assert select_mechanism(inputs) is Mechanism.STAR

    def test_boundary_is_star(self):
        inputs = SelectionInputs(state_bytes=32 * MB)
        assert select_mechanism(inputs) is Mechanism.STAR

    def test_large_state_abundant_bandwidth_prefers_line(self):
        inputs = SelectionInputs(state_bytes=128 * MB, bandwidth_constrained=False)
        assert select_mechanism(inputs) is Mechanism.LINE

    def test_large_constrained_latency_insensitive_prefers_line(self):
        inputs = SelectionInputs(
            state_bytes=128 * MB,
            bandwidth_constrained=True,
            latency_sensitive=False,
        )
        assert select_mechanism(inputs) is Mechanism.LINE

    def test_large_constrained_latency_sensitive_prefers_tree(self):
        inputs = SelectionInputs(
            state_bytes=128 * MB,
            bandwidth_constrained=True,
            latency_sensitive=True,
        )
        assert select_mechanism(inputs) is Mechanism.TREE

    def test_custom_threshold(self):
        inputs = SelectionInputs(state_bytes=40 * MB, large_state_threshold=64 * MB)
        assert select_mechanism(inputs) is Mechanism.STAR

    def test_invalid_inputs(self):
        with pytest.raises(SelectionError):
            SelectionInputs(state_bytes=-1)
        with pytest.raises(SelectionError):
            SelectionInputs(state_bytes=1, large_state_threshold=0)

    def test_computation_models_accepted(self):
        for model in ComputationModel:
            inputs = SelectionInputs(state_bytes=8 * MB, computation_model=model)
            assert select_mechanism(inputs) is Mechanism.STAR


class TestRecommendedParameters:
    def test_path_length_grows_with_state(self):
        short = recommended_path_length(16 * MB, latency_sensitive=False)
        long = recommended_path_length(1024 * MB, latency_sensitive=False)
        assert long > short

    def test_latency_sensitive_caps_path(self):
        assert recommended_path_length(1024 * MB, latency_sensitive=True) <= 8

    def test_path_at_least_two(self):
        assert recommended_path_length(0) == 2

    def test_path_capped_at_64(self):
        assert recommended_path_length(10**12, latency_sensitive=False) <= 64

    def test_negative_size_rejected(self):
        with pytest.raises(SelectionError):
            recommended_path_length(-1)

    def test_fanout_grows_with_state_and_failures(self):
        base = recommended_tree_fanout_bits(32 * MB, expected_failures=1)
        big = recommended_tree_fanout_bits(128 * MB, expected_failures=10)
        assert big > base
        assert big <= 4

    def test_fanout_rejects_negative_failures(self):
        with pytest.raises(SelectionError):
            recommended_tree_fanout_bits(1, expected_failures=-1)


class TestBuildMechanism:
    def test_stateless_returns_none(self):
        assert build_mechanism(SelectionInputs(1 * MB, stateful=False)) is None

    def test_star_instance(self):
        mech = build_mechanism(SelectionInputs(8 * MB))
        assert isinstance(mech, StarRecovery)

    def test_line_instance_with_scaled_path(self):
        mech = build_mechanism(
            SelectionInputs(256 * MB, latency_sensitive=False)
        )
        assert isinstance(mech, LineRecovery)
        assert mech.path_length == recommended_path_length(256 * MB, False)

    def test_tree_instance(self):
        mech = build_mechanism(
            SelectionInputs(
                128 * MB, bandwidth_constrained=True, latency_sensitive=True
            )
        )
        assert isinstance(mech, TreeRecovery)


class TestChainAwarePrediction:
    def test_flat_defaults_describe_a_chain_free_save(self):
        inputs = SelectionInputs(state_bytes=8 * MB)
        assert inputs.chain_links == 1
        assert inputs.delta_bytes == 0.0

    def test_chain_fields_validated(self):
        with pytest.raises(SelectionError):
            SelectionInputs(state_bytes=8 * MB, chain_links=0)
        with pytest.raises(SelectionError):
            SelectionInputs(state_bytes=8 * MB, delta_bytes=9 * MB)
        with pytest.raises(SelectionError):
            SelectionInputs(state_bytes=8 * MB, delta_bytes=-1.0)

    @pytest.mark.parametrize("mechanism", ("star", "line", "tree"))
    def test_replay_terms_increase_prediction(self, mechanism):
        from repro.recovery.selection import predict_recovery_seconds

        flat = SelectionInputs(state_bytes=64 * MB)
        chained = SelectionInputs(
            state_bytes=64 * MB, chain_links=4, delta_bytes=8 * MB
        )
        assert predict_recovery_seconds(mechanism, chained) > predict_recovery_seconds(
            mechanism, flat
        )

    def test_longer_chains_predict_slower_recovery(self):
        from repro.recovery.selection import predict_recovery_seconds

        predictions = [
            predict_recovery_seconds(
                "star",
                SelectionInputs(
                    state_bytes=16 * MB,
                    chain_links=links,
                    delta_bytes=(links - 1) * MB,
                ),
            )
            for links in (1, 2, 4)
        ]
        assert predictions == sorted(predictions)
        assert predictions[0] < predictions[2]


class TestBackgroundLoad:
    def test_default_is_quiescent(self):
        inputs = SelectionInputs(state_bytes=64 * MB)
        assert inputs.background_load == 0.0

    def test_fraction_validated(self):
        with pytest.raises(SelectionError):
            SelectionInputs(state_bytes=MB, background_load=1.0)
        with pytest.raises(SelectionError):
            SelectionInputs(state_bytes=MB, background_load=-0.1)

    def test_load_discounts_bandwidth(self):
        from repro.recovery.selection import predict_recovery_seconds

        quiet = SelectionInputs(state_bytes=64 * MB)
        busy = SelectionInputs(state_bytes=64 * MB, background_load=0.5)
        for mechanism in ("star", "line", "tree"):
            assert predict_recovery_seconds(
                mechanism, busy
            ) >= predict_recovery_seconds(mechanism, quiet)
        # Star is transfer-dominated at 64 MB: halving the bandwidth must
        # strictly slow the prediction.
        assert predict_recovery_seconds("star", busy) > predict_recovery_seconds(
            "star", quiet
        )

    def test_zero_load_prediction_unchanged(self):
        from repro.recovery.selection import predict_recovery_seconds

        a = SelectionInputs(state_bytes=32 * MB)
        b = SelectionInputs(state_bytes=32 * MB, background_load=0.0)
        for mechanism in ("star", "line", "tree"):
            assert predict_recovery_seconds(mechanism, a) == predict_recovery_seconds(
                mechanism, b
            )
