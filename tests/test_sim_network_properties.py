"""Property-based tests of the flow network's conservation invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Simulator
from repro.sim.network import Network

flow_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),  # src host index
        st.integers(min_value=0, max_value=4),  # dst host index
        st.floats(min_value=1.0, max_value=1e6),  # size
    ),
    min_size=1,
    max_size=12,
)

bandwidths = st.floats(min_value=10.0, max_value=1e6)


class TestConservation:
    @given(flow_specs, bandwidths)
    @settings(max_examples=60, deadline=None)
    def test_all_flows_complete_and_bytes_conserved(self, specs, bw):
        sim = Simulator()
        net = Network(sim)
        hosts = [net.add_host(f"h{i}", up_bw=bw, down_bw=bw, latency=0.001) for i in range(5)]
        completed = []
        expected = 0.0
        for src, dst, size in specs:
            if src == dst:
                continue
            net.transfer(hosts[src], hosts[dst], size, on_complete=completed.append)
            expected += size
        sim.run_until_idle()
        assert len(completed) == sum(1 for s, d, _ in specs if s != d)
        assert net.total_bytes == pytest.approx(expected, rel=1e-6)
        assert sum(h.bytes_sent for h in hosts) == pytest.approx(expected, rel=1e-6)
        assert sum(h.bytes_received for h in hosts) == pytest.approx(expected, rel=1e-6)

    @given(flow_specs, bandwidths)
    @settings(max_examples=40, deadline=None)
    def test_completion_no_earlier_than_physical_bound(self, specs, bw):
        """No flow can finish faster than its size over the link capacity."""
        sim = Simulator()
        net = Network(sim)
        hosts = [net.add_host(f"h{i}", up_bw=bw, down_bw=bw, latency=0.0) for i in range(5)]
        finished = {}
        for i, (src, dst, size) in enumerate(specs):
            if src == dst:
                continue
            net.transfer(
                hosts[src],
                hosts[dst],
                size,
                on_complete=lambda f, i=i, s=size: finished.__setitem__(i, (sim.now, s)),
            )
        sim.run_until_idle()
        for _, (t, size) in finished.items():
            assert t >= size / bw - 1e-9

    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=100.0, max_value=1e5),
        st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=40, deadline=None)
    def test_fan_in_bounded_by_receiver_capacity(self, senders, bw, size):
        """N equal flows into one receiver take ~N*size/bw in total."""
        sim = Simulator()
        net = Network(sim)
        sink = net.add_host("sink", down_bw=bw, latency=0.0)
        done = []
        for i in range(senders):
            src = net.add_host(f"s{i}", up_bw=math.inf, latency=0.0)
            net.transfer(src, sink, size, on_complete=lambda f: done.append(sim.now))
        sim.run_until_idle()
        assert len(done) == senders
        assert max(done) == pytest.approx(senders * size / bw, rel=1e-6)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_deterministic_given_same_inputs(self, data):
        specs = data.draw(flow_specs)

        def run():
            sim = Simulator()
            net = Network(sim)
            hosts = [
                net.add_host(f"h{i}", up_bw=1e4, down_bw=1e4, latency=0.001)
                for i in range(5)
            ]
            times = []
            for src, dst, size in specs:
                if src != dst:
                    net.transfer(
                        hosts[src], hosts[dst], size,
                        on_complete=lambda f: times.append(sim.now),
                    )
            sim.run_until_idle()
            return times

        assert run() == run()
