"""The observability layer: span tracing, metrics, and trace export."""

import json

import pytest

from repro import SR3
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    chrome_trace,
    dumps_trace,
    trace_dict,
)
from repro.obs.tracer import (
    clear_collected,
    collected_tracers,
    default_tracer,
    enable_tracing,
)


def run_pipeline(seed=11, tracer=None):
    """Protect + crash + recover one state; returns the SR3 instance."""
    sr3 = SR3.create(num_nodes=32, seed=seed, tracer=tracer)
    owner = sr3.overlay.nodes[0]
    pieces = sr3.state_split(
        {f"k{i}": i for i in range(40)}, "app/s", num_shards=4, num_replicas=2
    )
    sr3.save(owner, pieces)
    sr3.overlay.fail_node(owner)
    sr3.recover("app/s")
    return sr3


class TestSpanBasics:
    def test_spans_nest_via_explicit_parents(self):
        tracer = Tracer("t")
        clock = {"now": 0.0}
        tracer.bind_clock(lambda: clock["now"])
        root = tracer.start("recovery/star", category="recovery")
        clock["now"] = 1.0
        fetch = root.child("fetch shard 0", category="recovery.transfer", bytes=128.0)
        clock["now"] = 3.0
        fetch.finish()
        clock["now"] = 4.5
        root.finish()
        assert fetch.parent_id == root.span_id
        assert tracer.children_of(root) == [fetch]
        assert tracer.roots() == [root]
        assert fetch.duration == pytest.approx(2.0)
        assert root.duration == pytest.approx(4.5)

    def test_finish_is_idempotent_but_merges_attrs(self):
        tracer = Tracer("t")
        span = tracer.start("x")
        span.finish(at=2.0)
        span.finish(at=9.0, error="late")
        assert span.end == 2.0
        assert span.attrs["error"] == "late"

    def test_record_known_extent_and_instants(self):
        tracer = Tracer("t")
        merged = tracer.record("merge", 1.0, 3.5, category="recovery.merge")
        point = tracer.instant("route a->b", category="overlay.route")
        assert merged.duration == pytest.approx(2.5)
        assert point.kind == "instant"
        assert point.duration == 0.0
        assert tracer.duration_by_category() == {"recovery.merge": pytest.approx(2.5)}

    def test_find_by_fragment_and_category(self):
        tracer = Tracer("t")
        tracer.start("fetch shard 1", category="recovery.transfer")
        tracer.start("fetch shard 2", category="recovery.transfer")
        tracer.start("merge", category="recovery.merge")
        assert len(tracer.find("fetch")) == 2
        assert len(tracer.find("shard 2", category="recovery.transfer")) == 1
        assert tracer.find("fetch", category="recovery.merge") == []


class TestNullTracer:
    def test_all_operations_are_noops(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        span = tracer.start("anything", bytes=1.0)
        assert span is NULL_SPAN
        assert span.child("x") is NULL_SPAN
        assert span.finish(error="y") is NULL_SPAN
        assert tracer.record("r", 0.0, 1.0) is NULL_SPAN
        assert tracer.instant("i") is NULL_SPAN
        assert len(tracer) == 0
        assert tracer.roots() == []

    def test_disabled_tracer_records_nothing_through_full_pipeline(self):
        sr3 = run_pipeline()  # default: NULL_TRACER
        assert sr3.tracer is NULL_TRACER
        assert len(sr3.tracer.spans) == 0


class TestPipelineTracing:
    def test_recovery_produces_span_tree(self):
        sr3 = run_pipeline(tracer=Tracer("pipeline"))
        tracer = sr3.tracer
        saves = tracer.find("recovery/save", category="recovery")
        recoveries = [
            s
            for s in tracer.roots()
            if s.category == "recovery" and s.name.startswith("recovery/")
            and "save" not in s.name
        ]
        assert len(saves) == 1
        assert len(recoveries) == 1
        root = recoveries[0]
        kids = tracer.children_of(root)
        categories = {s.category for s in kids}
        assert "recovery.transfer" in categories
        assert "recovery.merge" in categories
        assert "recovery.install" in categories
        assert "recovery.detect" in categories
        # Every fetch has a network flow span nested beneath it.
        for fetch in (s for s in kids if s.category == "recovery.transfer"):
            flows = tracer.children_of(fetch)
            assert flows and all(f.category == "net.flow" for f in flows)
        # All spans closed, all timestamps on the virtual clock.
        assert all(s.done for s in tracer.spans)
        assert all(s.end >= s.start for s in tracer.spans)

    def test_save_span_has_write_children(self):
        sr3 = run_pipeline(tracer=Tracer("t"))
        save_root = sr3.tracer.find("recovery/save")[0]
        writes = [
            s
            for s in sr3.tracer.children_of(save_root)
            if s.category == "recovery.write"
        ]
        assert len(writes) == 8  # 4 shards x 2 replicas
        assert all(w.attrs["bytes"] > 0 for w in writes)

    def test_metrics_registry_populated(self):
        sr3 = run_pipeline(tracer=Tracer("t"))
        metrics = sr3.metrics
        assert metrics.counter("recovery.completed").total == 1
        assert metrics.counter("save.completed").total == 1
        assert metrics.histogram("recovery.duration").count == 1
        dump = metrics.dump()
        assert "counters" in dump and "histograms" in dump


class TestDeterminism:
    def test_identical_seeds_identical_traces(self):
        a = run_pipeline(seed=5, tracer=Tracer("run"))
        b = run_pipeline(seed=5, tracer=Tracer("run"))
        assert dumps_trace([a.tracer]) == dumps_trace([b.tracer])
        assert dumps_trace([a.tracer], chrome=False) == dumps_trace(
            [b.tracer], chrome=False
        )

    def test_different_seeds_differ(self):
        a = run_pipeline(seed=5, tracer=Tracer("run"))
        b = run_pipeline(seed=6, tracer=Tracer("run"))
        assert dumps_trace([a.tracer]) != dumps_trace([b.tracer])

    def test_export_trace_writes_identical_files(self, tmp_path):
        paths = []
        for i in range(2):
            sr3 = run_pipeline(seed=9, tracer=Tracer("run"))
            path = tmp_path / f"trace-{i}.json"
            sr3.export_trace(str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestExportFormats:
    def test_plain_dict_format(self):
        sr3 = run_pipeline(tracer=Tracer("t"))
        payload = trace_dict([sr3.tracer])
        assert payload["format"] == "sr3-trace-1"
        (trace,) = payload["traces"]
        assert trace["name"] == "t"
        spans = trace["spans"]
        assert spans
        by_id = {row["id"]: row for row in spans}
        for row in spans:
            assert row["end"] >= row["start"]
            if row["parent"] is not None:
                assert row["parent"] in by_id

    def test_chrome_trace_format(self):
        sr3 = run_pipeline(tracer=Tracer("t"))
        payload = chrome_trace([sr3.tracer])
        events = payload["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "M" in phases and "X" in phases
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0
        # Serialization is valid JSON with pinned formatting.
        text = dumps_trace([sr3.tracer])
        assert json.loads(text) == json.loads(dumps_trace([sr3.tracer]))

    def test_open_spans_clamp_to_clock(self):
        tracer = Tracer("t")
        clock = {"now": 0.0}
        tracer.bind_clock(lambda: clock["now"])
        tracer.start("never finished")
        clock["now"] = 7.0
        (row,) = trace_dict([tracer])["traces"][0]["spans"]
        assert row["end"] == 7.0


class TestCollection:
    def test_default_tracer_respects_switch(self):
        clear_collected()
        try:
            assert default_tracer() is NULL_TRACER
            enable_tracing(True)
            tracer = default_tracer("bench")
            assert isinstance(tracer, Tracer)
            assert collected_tracers() == [tracer]
        finally:
            enable_tracing(False)
            clear_collected()
        assert collected_tracers() == []


class TestRegistryPrimitives:
    def test_gauge(self):
        registry = MetricsRegistry("m")
        gauge = registry.gauge("pending")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6
        assert registry.gauge("pending") is gauge

    def test_histogram_percentiles(self):
        registry = MetricsRegistry("m")
        hist = registry.histogram("latency")
        for v in [1.0, 2.0, 3.0, 4.0, 10.0]:
            hist.observe(v)
        assert hist.count == 5
        assert hist.mean == pytest.approx(4.0)
        assert hist.percentile(50) == 3.0
        assert hist.percentile(100) == 10.0
        assert hist.min == 1.0 and hist.max == 10.0

    def test_counter_labels(self):
        registry = MetricsRegistry("m")
        counter = registry.counter("recovery.completed")
        counter.add(1, label="star")
        counter.add(2, label="tree")
        assert counter.total == 3
        assert registry.counter("recovery.completed") is counter
