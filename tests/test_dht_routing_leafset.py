"""Unit tests for the Pastry routing table and leaf set."""

import random

import pytest

from repro.dht.leafset import LeafSet
from repro.dht.node import DhtNode
from repro.dht.routing_table import RoutingTable
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.util.ids import NodeId, random_node_id


def make_nodes(count, seed=0):
    sim = Simulator()
    net = Network(sim)
    rng = random.Random(seed)
    return [
        DhtNode(random_node_id(rng), net.add_host(f"n{i}")) for i in range(count)
    ]


class TestRoutingTable:
    def test_add_places_by_prefix(self):
        nodes = make_nodes(2, seed=3)
        table = RoutingTable(nodes[0].node_id)
        assert table.add(nodes[1])
        row = nodes[0].node_id.shared_prefix_length(nodes[1].node_id)
        col = nodes[1].node_id.digits()[row]
        assert table.entry(row, col) is nodes[1]

    def test_add_self_is_noop(self):
        nodes = make_nodes(1)
        table = RoutingTable(nodes[0].node_id)
        assert not table.add(nodes[0])
        assert table.size() == 0

    def test_occupied_slot_kept(self):
        # Two nodes with the same (row, col) slot: first one wins.
        nodes = make_nodes(40, seed=1)
        table = RoutingTable(nodes[0].node_id)
        for node in nodes[1:]:
            table.add(node)
        size_before = table.size()
        for node in nodes[1:]:
            assert not table.add(node)
        assert table.size() == size_before

    def test_remove(self):
        nodes = make_nodes(2, seed=5)
        table = RoutingTable(nodes[0].node_id)
        table.add(nodes[1])
        assert table.remove(nodes[1].node_id)
        assert not table.remove(nodes[1].node_id)
        assert table.size() == 0

    def test_next_hop_shares_longer_prefix(self):
        nodes = make_nodes(60, seed=2)
        owner = nodes[0]
        table = RoutingTable(owner.node_id)
        for node in nodes[1:]:
            table.add(node)
        rng = random.Random(9)
        for _ in range(20):
            key = random_node_id(rng)
            hop = table.next_hop(key)
            if hop is not None:
                own = owner.node_id.shared_prefix_length(key)
                assert hop.node_id.shared_prefix_length(key) > own

    def test_next_hop_skips_dead_nodes(self):
        nodes = make_nodes(2, seed=7)
        table = RoutingTable(nodes[0].node_id)
        table.add(nodes[1])
        nodes[1].fail()
        row = nodes[0].node_id.shared_prefix_length(nodes[1].node_id)
        key = nodes[1].node_id
        assert table.next_hop(key) is None

    def test_row_entries_and_refresh(self):
        nodes = make_nodes(30, seed=4)
        table = RoutingTable(nodes[0].node_id)
        added = table.refresh(nodes[1:])
        assert added == table.size() > 0
        rows = table.occupied_rows()
        assert rows and all(table.row_entries(r) for r in rows)

    def test_invalid_digit_width(self):
        with pytest.raises(ValueError):
            RoutingTable(NodeId(0), bits_per_digit=5)


class TestLeafSet:
    def test_size_must_be_even(self):
        with pytest.raises(ValueError):
            LeafSet(NodeId(0), size=3)

    def test_rebuild_halves(self):
        nodes = make_nodes(50, seed=6)
        owner = nodes[0]
        ls = LeafSet(owner.node_id, size=8)
        ls.rebuild(nodes[1:])
        assert len(ls.clockwise()) == 4
        assert len(ls.counter_clockwise()) == 4
        assert ls.is_full()

    def test_clockwise_sorted_by_proximity(self):
        nodes = make_nodes(50, seed=8)
        owner = nodes[0]
        ls = LeafSet(owner.node_id, size=8)
        ls.rebuild(nodes[1:])
        distances = [
            owner.node_id.clockwise_distance(n.node_id) for n in ls.clockwise()
        ]
        assert distances == sorted(distances)

    def test_members_excludes_owner(self):
        nodes = make_nodes(20, seed=2)
        ls = LeafSet(nodes[0].node_id, size=8)
        ls.rebuild(nodes)  # includes owner, must be filtered
        assert all(n.node_id != nodes[0].node_id for n in ls.members())

    def test_remove(self):
        nodes = make_nodes(20, seed=3)
        ls = LeafSet(nodes[0].node_id, size=8)
        ls.rebuild(nodes[1:])
        victim = ls.members()[0]
        assert ls.remove(victim.node_id)
        assert not ls.contains(victim.node_id)
        assert not ls.remove(victim.node_id)

    def test_covers_keys_within_span(self):
        nodes = make_nodes(100, seed=11)
        owner = nodes[0]
        ls = LeafSet(owner.node_id, size=16)
        ls.rebuild(nodes[1:])
        # A key equal to a member id is always within the span.
        member = ls.clockwise()[0]
        assert ls.covers(member.node_id)

    def test_closest_prefers_nearest(self):
        nodes = make_nodes(100, seed=12)
        owner = nodes[0]
        ls = LeafSet(owner.node_id, size=16)
        ls.rebuild(nodes[1:])
        member = ls.clockwise()[1]
        found = ls.closest(member.node_id)
        assert found.node_id == member.node_id

    def test_closest_skips_dead(self):
        nodes = make_nodes(30, seed=13)
        ls = LeafSet(nodes[0].node_id, size=4)
        ls.rebuild(nodes[1:])
        target = ls.members()[0]
        target.fail()
        found = ls.closest(target.node_id)
        assert found is None or found.node_id != target.node_id
