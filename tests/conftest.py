"""Shared fixtures for the recovery-layer tests."""

import random

import pytest

from repro.dht.overlay import Overlay
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import CostModel, RecoveryContext
from repro.sim.kernel import Simulator
from repro.sim.network import Network, RemoteStorage
from repro.state.partitioner import partition_synthetic
from repro.state.placement import HashPlacement, LeafSetPlacement
from repro.state.version import StateVersion
from repro.util.sizes import MB, mbit_per_s


class RecoveryWorld:
    """A compact bundle of simulator + overlay + manager for tests."""

    def __init__(self, num_nodes=64, seed=0, link_mbit=None, placement="leafset"):
        self.sim = Simulator()
        self.network = Network(self.sim)
        bw = mbit_per_s(link_mbit) if link_mbit else float("inf")
        self.overlay = Overlay(self.sim, self.network, rng=random.Random(seed))
        self.overlay.build(
            num_nodes,
            host_factory=lambda n: self.network.add_host(n, up_bw=bw, down_bw=bw),
        )
        self.storage = RemoteStorage("storage", up_bw=400 * MB, down_bw=400 * MB)
        self.network.hosts["storage"] = self.storage
        self.ctx = RecoveryContext(self.sim, self.network, self.overlay, CostModel())
        impl = LeafSetPlacement() if placement == "leafset" else HashPlacement()
        self.manager = RecoveryManager(self.ctx, placement=impl)

    def save_synthetic(self, name="app/state", size=8 * MB, shards=4, replicas=2):
        pieces = partition_synthetic(name, int(size), shards, StateVersion(self.sim.now, 1))
        registered = self.manager.register(self.overlay.nodes[0], pieces, replicas)
        handle = self.manager.save(name)
        self.sim.run_until_idle()
        return registered, handle.result

    def fail_owner(self, name="app/state"):
        owner = self.manager.states[name].owner
        self.overlay.fail_node(owner)
        return self.overlay.replacement_for(owner)


@pytest.fixture
def world():
    return RecoveryWorld()


@pytest.fixture
def world_factory():
    return RecoveryWorld
