"""Live cells where the control plane must *notice* the kill itself.

End-to-end over :func:`repro.bench.experiments.run_slo_cell`: one cell
senses through the SLO burn-rate engine, one through the heartbeat
failure detector. In both, the load driver only injects the fault — a
recovery that lands proves the telemetry (or the heartbeat protocol)
carried the signal.
"""

import pytest

from repro.bench.experiments import run_slo_cell
from repro.errors import BenchmarkError, LiveHarnessError
from repro.live import ConstantRate, LoadDriver, build_live_cell


@pytest.fixture(scope="module")
def burn_cell():
    return run_slo_cell("burn", seed=0)


@pytest.fixture(scope="module")
def detector_cell():
    return run_slo_cell("detector", seed=0)


class TestBurnCell:
    def test_alert_fires_after_the_kill(self, burn_cell):
        engine = burn_cell["engine"]
        report = burn_cell["report"]
        assert engine.alerts, "no burn-rate alert ever fired"
        assert report.killed_at is not None
        assert engine.alerts[0].at > report.killed_at

    def test_recovery_is_alert_triggered(self, burn_cell):
        controller = burn_cell["controller"]
        report = burn_cell["report"]
        assert burn_cell["detector"] is None  # nothing read ground truth
        verified = [r for r in controller.records if r.verified]
        assert verified, "the alert never produced a verified remediation"
        record = verified[0]
        assert record.diagnosis.condition == "slo-burning"
        assert record.action == "recover-degraded"
        # MTTR is dated from the alert to the landing, mid-run.
        assert record.landed_at is not None
        assert record.resolved_at == record.landed_at
        assert record.mttr_s > 0
        assert report.recovered_at is not None
        assert report.recovered_at > burn_cell["engine"].alerts[0].at

    def test_driver_series_are_continuous(self, burn_cell):
        pipeline = burn_cell["pipeline"]
        for name in ("live.backlog", "live.throughput", "live.replay_rate", "live.arrival_rate"):
            assert pipeline.has_series(name), name
            assert len(pipeline.series(name)) > 50
        # The latency histogram opted into observations, so windowed
        # percentiles exist too.
        assert pipeline.has_series("live.latency_s.p50")
        assert pipeline.has_series("live.latency_s.p99")

    def test_anomalies_saw_the_disruption(self, burn_cell):
        anomalies = burn_cell["anomalies"]
        report = burn_cell["report"]
        assert anomalies.anomalies
        assert all(a.series == "live.throughput" for a in anomalies.anomalies)
        assert any(a.at >= report.killed_at for a in anomalies.anomalies)

    def test_backlog_drains_after_recovery(self, burn_cell):
        report = burn_cell["report"]
        assert report.drained_at is not None
        assert report.served == report.arrived


class TestDetectorCell:
    def test_declaration_triggers_recovery(self, detector_cell):
        detector = detector_cell["detector"]
        controller = detector_cell["controller"]
        report = detector_cell["report"]
        assert detector_cell["engine"] is None
        assert detector.detections, "the heartbeat protocol never declared"
        declared_at = min(t for _, _, t in detector.detections)
        assert declared_at > report.killed_at
        verified = [r for r in controller.records if r.verified]
        assert verified
        record = verified[0]
        assert record.diagnosis.condition == "owner-lost"
        assert record.action == "recover"
        # MTTR is charged from the declaration, not the kill or the sweep.
        assert record.diagnosis.detected_at == pytest.approx(declared_at)
        assert record.mttr_s > 0
        assert report.recovered_at is not None

    def test_detector_feeds_telemetry_series(self, detector_cell):
        pipeline = detector_cell["pipeline"]
        assert pipeline.has_series("detector.suspicion")
        suspicion = [v for _, v in pipeline.series("detector.suspicion").points()]
        assert max(suspicion) >= 3.0  # the threshold was reached
        assert pipeline.has_series("detector.heartbeats.rate")

    def test_detector_is_stopped_at_finalize(self, detector_cell):
        assert not detector_cell["detector"].running
        assert not detector_cell["pipeline"].running


class TestDeterminism:
    def test_burn_cell_reports_identical_across_runs(self, burn_cell):
        again = run_slo_cell("burn", seed=0)
        assert again["report"].to_dict() == burn_cell["report"].to_dict()
        assert [a.to_dict() for a in again["engine"].alerts] == [
            a.to_dict() for a in burn_cell["engine"].alerts
        ]
        assert (
            again["controller"].report()["records"]
            == burn_cell["controller"].report()["records"]
        )


class TestDriverValidation:
    def test_poll_interval_must_be_positive(self):
        cell = build_live_cell(num_nodes=12, seed=3)
        with pytest.raises(LiveHarnessError):
            LoadDriver(
                cell,
                ConstantRate(100.0),
                duration=5.0,
                poll_interval=0.0,
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(BenchmarkError):
            run_slo_cell("psychic")
