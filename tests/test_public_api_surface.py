"""The public import surface stays importable and complete."""

import importlib

import pytest

import repro
from repro.errors import (
    ErasureCodingError,
    IntegrityError,
    InsufficientShardsError,
    MulticastError,
    NetworkError,
    OverlayError,
    RecoveryError,
    ReproError,
    RoutingError,
    ShardError,
    SimulationError,
    StateError,
    StreamRuntimeError,
    TopologyError,
    VersionConflictError,
)

PACKAGES = [
    "repro.sim",
    "repro.dht",
    "repro.multicast",
    "repro.state",
    "repro.recovery",
    "repro.recovery.baselines",
    "repro.recovery.baselines.erasure",
    "repro.streaming",
    "repro.workloads",
    "repro.bench",
]


class TestImports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_top_level(self):
        assert repro.__version__
        assert hasattr(repro, "SR3")

    def test_table2_api_methods_present(self):
        from repro import SR3

        for method in (
            "state_split",
            "save",
            "star_define",
            "line_define",
            "tree_define",
            "selection",
            "recover",
        ):
            assert callable(getattr(SR3, method))


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SimulationError,
            NetworkError,
            OverlayError,
            RoutingError,
            MulticastError,
            StateError,
            ShardError,
            VersionConflictError,
            IntegrityError,
            RecoveryError,
            InsufficientShardsError,
            ErasureCodingError,
            TopologyError,
            StreamRuntimeError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_specialisations(self):
        assert issubclass(NetworkError, SimulationError)
        assert issubclass(RoutingError, OverlayError)
        assert issubclass(InsufficientShardsError, RecoveryError)
        assert issubclass(VersionConflictError, StateError)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise InsufficientShardsError("x")
