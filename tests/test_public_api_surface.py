"""The public import surface stays importable and complete."""

import importlib

import pytest

import repro
from repro.errors import (
    ErasureCodingError,
    IntegrityError,
    InsufficientShardsError,
    MulticastError,
    NetworkError,
    OverlayError,
    RecoveryError,
    ReproError,
    RoutingError,
    ShardError,
    SimulationError,
    StateError,
    StreamRuntimeError,
    TopologyError,
    VersionConflictError,
)

PACKAGES = [
    "repro.sim",
    "repro.dht",
    "repro.multicast",
    "repro.state",
    "repro.recovery",
    "repro.recovery.baselines",
    "repro.recovery.baselines.erasure",
    "repro.streaming",
    "repro.workloads",
    "repro.bench",
    "repro.obs",
    "repro.control",
    "repro.live",
]


class TestImports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_top_level(self):
        assert repro.__version__
        assert hasattr(repro, "SR3")
        assert hasattr(repro, "SplitResult")
        assert hasattr(repro, "SelectionResult")

    def test_table2_api_methods_present(self):
        from repro import SR3

        for method in (
            "state_split",
            "save",
            "define",
            "star_define",
            "line_define",
            "tree_define",
            "selection",
            "recover",
            "export_trace",
        ):
            assert callable(getattr(SR3, method))

    def test_obs_surface(self):
        from repro import obs

        for name in (
            "Tracer",
            "NullTracer",
            "Span",
            "MetricsRegistry",
            "Counter",
            "Gauge",
            "Histogram",
            "TimeSeries",
            "trace_dict",
            "chrome_trace",
            "write_trace",
            "enable_tracing",
            "default_tracer",
            "collected_tracers",
        ):
            assert hasattr(obs, name), f"repro.obs.{name} missing"

    def test_sim_metrics_shim_reexports(self):
        # Back-compat: the old metrics module keeps exporting the types.
        from repro.obs.registry import Counter as ObsCounter
        from repro.sim.metrics import Counter as ShimCounter

        assert ShimCounter is ObsCounter


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SimulationError,
            NetworkError,
            OverlayError,
            RoutingError,
            MulticastError,
            StateError,
            ShardError,
            VersionConflictError,
            IntegrityError,
            RecoveryError,
            InsufficientShardsError,
            ErasureCodingError,
            TopologyError,
            StreamRuntimeError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_specialisations(self):
        assert issubclass(NetworkError, SimulationError)
        assert issubclass(RoutingError, OverlayError)
        assert issubclass(InsufficientShardsError, RecoveryError)
        assert issubclass(VersionConflictError, StateError)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise InsufficientShardsError("x")
