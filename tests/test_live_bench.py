"""The ``bench live`` experiment: rows, gated keys, interference invariant."""

import pytest

from repro.bench import experiments as exp

GATED_SUFFIXES = (
    "p99_before_s",
    "p99_during_s",
    "p99_after_s",
    "replay_lag_peak",
    "recovery_s",
    "drain_s",
    "interference_ratio",
)


@pytest.fixture(scope="module")
def result():
    return exp.live_recovery(
        seed=0,
        duration_s=20.0,
        base_rate=250.0,
        peak_rate=1_500.0,
        bulk_state_mb=32.0,
        service_rate=2_500.0,
        num_nodes=16,
    )


def test_rows_cover_every_mechanism_and_load(result):
    pairs = {(row["mechanism"], row["load"]) for row in result.rows}
    assert pairs == {
        (mech, load)
        for mech in ("star", "line", "tree")
        for load in ("loaded", "quiet")
    }


def test_baseline_keys_present(result):
    metrics = result.extra["baseline_metrics"]
    for mech in ("star", "line", "tree"):
        for suffix in GATED_SUFFIXES:
            assert f"live/{mech}/{suffix}" in metrics
        assert f"live/{mech}/wall_s" in metrics
        assert f"live/{mech}/predict_error" in metrics


def test_interference_slows_every_mechanism(result):
    metrics = result.extra["baseline_metrics"]
    for mech in ("star", "line", "tree"):
        assert metrics[f"live/{mech}/interference_ratio"] > 1.0


def test_deterministic_given_seed(result):
    again = exp.live_recovery(
        seed=0,
        duration_s=20.0,
        base_rate=250.0,
        peak_rate=1_500.0,
        bulk_state_mb=32.0,
        service_rate=2_500.0,
        num_nodes=16,
    )
    a = dict(result.extra["baseline_metrics"])
    b = dict(again.extra["baseline_metrics"])
    for metrics in (a, b):
        for key in list(metrics):
            if key.endswith("/wall_s"):
                del metrics[key]
    assert a == b


def test_outage_phase_dominates_latency(result):
    metrics = result.extra["baseline_metrics"]
    for mech in ("star", "line", "tree"):
        assert (
            metrics[f"live/{mech}/p99_during_s"]
            > 10 * metrics[f"live/{mech}/p99_before_s"]
        )
