"""The hot-standby tier: provisioning, warm takeover, cold degradation."""

import pytest

from repro.errors import InsufficientShardsError
from repro.recovery.standby import (
    StandbyRecovery,
    standby_coverage,
    standby_node_of,
    sync_standby,
)
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.state.shard import DeltaShard
from repro.state.version import StateVersion
from repro.util.sizes import MB


def pick_standby(world, name="app/state"):
    """A deterministic alive non-owner node to host the warm image."""
    owner = world.manager.states[name].owner
    return next(
        n for n in world.overlay.alive_nodes() if n.node_id != owner.node_id
    )


def provision(world, name="app/state"):
    registered = world.manager.states[name]
    standby = pick_standby(world, name)
    sync = sync_standby(world.ctx, registered, standby)
    world.sim.run_until_idle()
    return registered, standby, sync.report


def add_delta(world, name="app/state", delta_bytes=1 * MB):
    registered = world.manager.states[name]
    chain = registered.chain
    parent = chain.tip_version
    version = StateVersion(world.sim.now, parent.sequence + 1)
    per_shard = int(delta_bytes // chain.num_shards)
    delta = [
        DeltaShard.synthetic_delta(
            name, i, chain.num_shards, version, parent, chain.length, per_shard
        )
        for i in range(chain.num_shards)
    ]
    handle = world.manager.save_delta(name, delta)
    world.sim.run_until_idle()
    return handle.result


class TestSync:
    def test_sync_warms_every_segment(self, world):
        world.save_synthetic(size=8 * MB, shards=4)
        registered, standby, report = provision(world)
        assert report.copied_segments == 4
        assert report.missed_segments == 0
        assert report.copied_bytes == pytest.approx(8 * MB)
        assert standby_coverage(registered, standby) == (4, 4)
        assert standby_node_of(registered) is standby

    def test_resync_is_incremental(self, world):
        world.save_synthetic(size=8 * MB, shards=4)
        registered, standby, _ = provision(world)
        again = sync_standby(world.ctx, registered, standby)
        world.sim.run_until_idle()
        assert again.report.copied_segments == 0
        assert again.report.warm_segments == 4
        assert again.report.warm_bytes == pytest.approx(8 * MB)

    def test_sync_covers_the_delta_chain(self, world):
        world.save_synthetic(size=8 * MB, shards=4)
        provision(world)
        add_delta(world)
        registered, standby, report = provision(world)
        # Base already warm; only the fresh delta link ships.
        assert report.warm_segments == 4
        assert report.copied_segments == 4
        assert standby_coverage(registered, standby) == (8, 8)

    def test_sync_counts_unreachable_segments_as_missed(self, world):
        registered, _ = world.save_synthetic(size=8 * MB, shards=4, replicas=2)
        for placed in list(registered.plan.for_shard(0)):
            placed.node.drop_shard(placed.replica.key)
        _, _, report = provision(world)
        assert report.missed_segments == 1
        assert report.copied_segments == 3

    def test_no_standby_without_provisioning(self, world):
        registered, _ = world.save_synthetic()
        assert standby_node_of(registered) is None
        assert standby_coverage(registered, world.overlay.nodes[3])[0] == 0


class TestTakeover:
    def test_warm_takeover_is_a_flip(self, world):
        world.save_synthetic(size=32 * MB, shards=4)
        registered, standby, _ = provision(world)
        world.overlay.fail_node(registered.owner)
        handle = StandbyRecovery().start(
            world.ctx, registered.plan, standby, "app/state"
        )
        world.sim.run_until_idle()
        result = handle.result
        assert result.mechanism == "standby"
        assert result.detail["warm_segments"] == 4
        assert result.detail["cold_segments"] == 0
        assert result.detail["flip_s"] > 0

    def test_takeover_beats_star_on_warm_state(self, world_factory):
        times = {}
        for label, mechanism, warm in (
            ("standby", StandbyRecovery(), True),
            ("star", StarRecovery(), False),
        ):
            world = world_factory()
            world.save_synthetic(size=32 * MB, shards=4)
            registered = world.manager.states["app/state"]
            standby = pick_standby(world)
            if warm:
                sync_standby(world.ctx, registered, standby)
                world.sim.run_until_idle()
            world.overlay.fail_node(registered.owner)
            handle = mechanism.start(
                world.ctx, registered.plan, standby, "app/state"
            )
            world.sim.run_until_idle()
            times[label] = handle.result.duration
        assert times["standby"] < 0.2 * times["star"]

    def test_partial_warm_fetches_the_cold_segment(self, world):
        world.save_synthetic(size=8 * MB, shards=4)
        registered, standby, _ = provision(world)
        # One warm copy evaporates; takeover must degrade, not fail.
        warm_keys = [
            p.replica.key
            for p in registered.plan.placements
            if getattr(p.replica, "standby", False)
        ]
        standby.drop_shard(warm_keys[0])
        world.overlay.fail_node(registered.owner)
        handle = StandbyRecovery().start(
            world.ctx, registered.plan, standby, "app/state"
        )
        world.sim.run_until_idle()
        result = handle.result
        assert result.detail["warm_segments"] == 3
        assert result.detail["cold_segments"] == 1

    def test_cold_takeover_without_provisioning_still_recovers(self, world):
        registered, _ = world.save_synthetic(size=8 * MB, shards=4)
        replacement = world.fail_owner()
        handle = StandbyRecovery().start(
            world.ctx, registered.plan, replacement, "app/state"
        )
        world.sim.run_until_idle()
        result = handle.result
        assert result.detail["warm_segments"] == 0
        assert result.detail["cold_segments"] == 4

    def test_takeover_replays_the_chain_tail(self, world):
        world.save_synthetic(size=8 * MB, shards=4)
        provision(world)
        add_delta(world)
        registered, standby, _ = provision(world)
        world.overlay.fail_node(registered.owner)
        handle = StandbyRecovery().start(
            world.ctx, registered.plan, standby, "app/state"
        )
        world.sim.run_until_idle()
        assert handle.result.detail["warm_segments"] == 8

    def test_insufficient_shards_fails(self, world):
        registered, _ = world.save_synthetic(size=8 * MB, shards=4)
        for placed in list(registered.plan.for_shard(2)):
            placed.node.drop_shard(placed.replica.key)
        replacement = world.fail_owner()
        handle = StandbyRecovery().start(
            world.ctx, registered.plan, replacement, "app/state"
        )
        world.sim.run_until_idle()
        with pytest.raises(InsufficientShardsError):
            handle.result

    def test_fetch_window_validation(self):
        with pytest.raises(ValueError):
            StandbyRecovery(fetch_window=0)


class TestLiveTakeover:
    def test_standby_under_live_traffic_beats_tree_by_5x(self):
        """The acceptance gate: takeover < 0.2x tree makespan, live."""
        from repro.live.driver import LoadDriver, build_live_cell
        from repro.live.rates import FlashCrowd

        times = {}
        for label, mechanism, standby in (
            ("tree", TreeRecovery(fanout_bits=1, sub_shards=8), False),
            ("standby", StandbyRecovery(), True),
        ):
            cell = build_live_cell(num_nodes=16, seed=0, link_mbit=200.0)
            driver = LoadDriver(
                cell,
                FlashCrowd(base=300.0, peak=1500.0, at=8.0, ramp=2.0, hold=10.0, decay=5.0),
                duration=30.0,
                service_rate=3_000.0,
                checkpoint_at=(5.0, 8.0),
                kill_at=10.0,
                mechanism=mechanism,
                bulk_state_mb=32.0,
                standby=standby,
            )
            report = driver.run()
            assert report.recovery_s is not None
            times[label] = report.recovery_s
            if standby:
                assert driver.standby_syncs >= 2  # one re-warm per barrier
                assert driver.standby_warm_bytes > 32 * MB
        assert times["standby"] < 0.2 * times["tree"]
