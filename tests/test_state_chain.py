"""Unit tests for the version-chain layer (delta shards, chains, replay)."""

import pytest

from repro.errors import (
    IntegrityError,
    ShardError,
    VersionConflictError,
)
from repro.state.chain import (
    ChainPlan,
    CompactionPolicy,
    VersionChain,
    chain_digest,
    diff_snapshots,
    partition_delta,
    reconstruct_chain,
)
from repro.state.partitioner import (
    partition_snapshot,
    partition_synthetic,
    shard_index_for_key,
)
from repro.state.shard import (
    DELTA_HEADER_BYTES,
    DeltaShard,
    Shard,
)
from repro.state.store import StateSnapshot
from repro.state.version import StateVersion
from repro.util.sizes import MB

V0 = StateVersion(0.0, 1)
V1 = StateVersion(1.0, 2)
V2 = StateVersion(2.0, 3)


def snapshot(entries, version=V0, name="app/state"):
    return StateSnapshot(name, dict(entries), version)


def base_shards(entries, version=V0, num_shards=4, name="app/state"):
    return partition_snapshot(snapshot(entries, version, name), num_shards)


class TestDeltaShard:
    def test_requires_link_at_least_one(self):
        with pytest.raises(ShardError):
            DeltaShard("s", 0, 4, V1, V0, chain_link=0, entries={})

    def test_version_must_follow_parent(self):
        with pytest.raises(ShardError):
            DeltaShard("s", 0, 4, V0, V1, chain_link=1, entries={})

    def test_checksum_folds_lineage(self):
        a = DeltaShard("s", 0, 4, V2, V0, 1, entries={"k": 1})
        b = DeltaShard("s", 0, 4, V2, V1, 1, entries={"k": 1})
        c = DeltaShard("s", 0, 4, V2, V0, 1, entries={"k": 1}, deletions=("gone",))
        assert a.checksum != b.checksum
        assert a.checksum != c.checksum

    def test_verify_detects_tamper(self):
        shard = DeltaShard("s", 0, 4, V1, V0, 1, entries={"k": 1})
        assert shard.verify()
        shard.entries["k"] = 2
        assert not shard.verify()

    def test_empty_delta_still_has_wire_footprint(self):
        shard = DeltaShard("s", 0, 4, V1, V0, 1, entries={})
        assert shard.size_bytes == DELTA_HEADER_BYTES

    def test_replica_key_link_disambiguates(self):
        base = Shard("s", 0, 4, V0, entries={"k": 1})
        delta = DeltaShard("s", 0, 4, V1, V0, 1, entries={"k": 2})
        from repro.state.partitioner import replicate

        base_key = replicate([base], 1)[0].key
        delta_key = replicate([delta], 1)[0].key
        assert base_key != delta_key
        assert delta_key.link == 1


class TestDiffSnapshots:
    def test_changed_and_deleted(self):
        parent = snapshot({"a": 1, "b": 2, "c": 3}, V0)
        current = snapshot({"a": 1, "b": 20, "d": 4}, V1)
        changed, deletions = diff_snapshots(parent, current)
        assert changed == {"b": 20, "d": 4}
        assert deletions == ["c"]

    def test_rejects_different_states(self):
        with pytest.raises(ShardError):
            diff_snapshots(snapshot({}, V0, "x"), snapshot({}, V1, "y"))

    def test_rejects_non_advancing_version(self):
        with pytest.raises(VersionConflictError):
            diff_snapshots(snapshot({}, V1), snapshot({}, V0))


class TestPartitionDelta:
    def test_every_shard_index_produced(self):
        shards = partition_delta("s", {"k": 1}, [], 4, V1, V0, 1)
        assert [s.index for s in shards] == [0, 1, 2, 3]
        assert all(s.chain_link == 1 for s in shards)

    def test_keys_route_like_the_base_partition(self):
        changed = {f"key-{i}": i for i in range(32)}
        deleted = [f"dead-{i}" for i in range(8)]
        shards = partition_delta("s", changed, deleted, 4, V1, V0, 1)
        for key, value in changed.items():
            bucket = shards[shard_index_for_key(key, 4)]
            assert bucket.entries[key] == value
        for key in deleted:
            assert key in shards[shard_index_for_key(key, 4)].deletions

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ShardError):
            partition_delta("s", {}, [], 0, V1, V0, 1)


class TestVersionChain:
    def test_reset_then_append(self):
        chain = VersionChain("s")
        chain.reset(base_shards({"a": 1, "b": 2}, V0, name="s"), plan=None)
        assert chain.length == 1 and chain.tip_version == V0
        chain.append_delta(partition_delta("s", {"a": 9}, [], 4, V1, V0, 1), plan=None)
        assert chain.length == 2 and chain.tip_version == V1
        assert chain.delta_bytes > 0

    def test_base_must_be_link_zero(self):
        chain = VersionChain("s")
        with pytest.raises(ShardError):
            chain.reset(partition_delta("s", {"a": 1}, [], 4, V1, V0, 1), plan=None)

    def test_delta_parent_must_match_tip(self):
        chain = VersionChain("s")
        chain.reset(base_shards({"a": 1}, V0, name="s"), plan=None)
        stale = partition_delta("s", {"a": 2}, [], 4, V2, V1, 1)
        with pytest.raises(VersionConflictError):
            chain.append_delta(stale, plan=None)

    def test_delta_link_must_be_in_order(self):
        chain = VersionChain("s")
        chain.reset(base_shards({"a": 1}, V0, name="s"), plan=None)
        skipped = partition_delta("s", {"a": 2}, [], 4, V1, V0, chain_link=2)
        with pytest.raises(ShardError):
            chain.append_delta(skipped, plan=None)

    def test_append_without_base_rejected(self):
        chain = VersionChain("s")
        with pytest.raises(ShardError):
            chain.append_delta(partition_delta("s", {}, [], 4, V1, V0, 1), plan=None)

    def test_needs_compaction_by_length(self):
        policy = CompactionPolicy(max_chain_len=2, max_delta_ratio=100.0)
        chain = VersionChain("s")
        chain.reset(
            partition_synthetic("s", 8 * MB, 4, V0), plan=None
        )
        assert not chain.needs_compaction(policy)
        delta = [
            DeltaShard.synthetic_delta("s", i, 4, V1, V0, 1, 1024) for i in range(4)
        ]
        chain.append_delta(delta, plan=None)
        assert chain.needs_compaction(policy)

    def test_needs_compaction_by_delta_ratio(self):
        policy = CompactionPolicy(max_chain_len=10, max_delta_ratio=0.5)
        chain = VersionChain("s")
        chain.reset(partition_synthetic("s", 8 * MB, 4, V0), plan=None)
        assert not chain.needs_compaction(policy, extra_delta_bytes=1 * MB)
        assert chain.needs_compaction(policy, extra_delta_bytes=5 * MB)

    def test_policy_validation(self):
        with pytest.raises(ShardError):
            CompactionPolicy(max_chain_len=0)
        with pytest.raises(ShardError):
            CompactionPolicy(max_delta_ratio=0.0)


class TestReconstructChain:
    def chain_segments(self):
        base = base_shards({"a": 1, "b": 2, "c": 3}, V0, name="s")
        d1 = partition_delta("s", {"a": 10, "d": 4}, ["b"], 4, V1, V0, 1)
        d2 = partition_delta("s", {"e": 5}, ["c"], 4, V2, V1, 2)
        return base + d1 + d2

    def test_base_then_deltas_with_tombstones(self):
        rebuilt = reconstruct_chain(self.chain_segments())
        assert rebuilt.as_dict() == {"a": 10, "d": 4, "e": 5}
        assert rebuilt.version == V2

    def test_missing_whole_link_rejected(self):
        segments = [s for s in self.chain_segments() if s.chain_link != 1]
        with pytest.raises(ShardError):
            reconstruct_chain(segments)

    def test_broken_parent_linkage_rejected(self):
        base = base_shards({"a": 1}, V0, name="s")
        orphan = partition_delta("s", {"a": 2}, [], 4, V2, V1, 1)
        with pytest.raises(VersionConflictError):
            reconstruct_chain(base + orphan)

    def test_tampered_delta_fails_integrity(self):
        segments = self.chain_segments()
        victim = next(s for s in segments if s.chain_link == 1 and s.entries)
        victim.entries[next(iter(victim.entries))] = "corrupted"
        with pytest.raises(IntegrityError):
            reconstruct_chain(segments)

    def test_synthetic_chain_reconstructs_by_size(self):
        base = partition_synthetic("s", 8 * MB, 4, V0)
        delta = [
            DeltaShard.synthetic_delta("s", i, 4, V1, V0, 1, 1024) for i in range(4)
        ]
        rebuilt = reconstruct_chain(base + delta)
        assert rebuilt.size_bytes == 8 * MB
        assert rebuilt.version == V1

    def test_mixing_synthetic_and_materialized_rejected(self):
        base = base_shards({"a": 1}, V0, name="s")
        delta = [
            DeltaShard.synthetic_delta("s", i, 4, V1, V0, 1, 1024) for i in range(4)
        ]
        with pytest.raises(ShardError):
            reconstruct_chain(base + delta)

    def test_empty_segment_set_rejected(self):
        with pytest.raises(ShardError):
            reconstruct_chain([])


class TestChainDigest:
    def test_order_insensitive_but_content_sensitive(self):
        base = base_shards({"a": 1, "b": 2}, V0, name="s")
        delta = partition_delta("s", {"a": 9}, [], 4, V1, V0, 1)
        forward = chain_digest(base + delta)
        backward = chain_digest(list(reversed(base + delta)))
        assert forward == backward
        other = partition_delta("s", {"a": 8}, [], 4, V1, V0, 1)
        assert chain_digest(base + other) != forward


class TestChainPlan:
    def saved_chain(self, world, rounds=2):
        from repro.bench.harness import saved_delta

        registered, _ = world.save_synthetic()
        for _ in range(rounds):
            saved_delta(world, "app/state", 64 * 1024)
        return registered

    def test_segments_map_links_to_shards(self, world):
        registered = self.saved_chain(world, rounds=2)
        plan = registered.plan
        assert isinstance(plan, ChainPlan)
        assert plan.chain_length == 3
        assert plan.shard_indexes() == list(range(3 * 4))
        # Segment k*m+i serves shard i of link k.
        for segment in plan.shard_indexes():
            link, index = divmod(segment, 4)
            for placed in plan.providers_for(segment):
                assert placed.replica.shard.index == index
                assert placed.replica.shard.chain_link == link

    def test_out_of_range_segment_rejected(self, world):
        plan = self.saved_chain(world, rounds=1).plan
        with pytest.raises(ShardError):
            plan.providers_for(2 * 4)

    def test_available_shards_covers_every_segment(self, world):
        registered = self.saved_chain(world, rounds=2)
        shards = registered.plan.available_shards()
        assert len(shards) == 3 * 4
        assert chain_digest(shards) == chain_digest(registered.chain.all_shards())

    def test_plan_requires_a_base(self):
        with pytest.raises(ShardError):
            ChainPlan(VersionChain("s"))
