"""Unit and integration tests for the incremental join operator."""

import random

import pytest

from repro.dht.overlay import Overlay
from repro.errors import StreamRuntimeError
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import RecoveryContext
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.streaming.backend import SR3StateBackend
from repro.streaming.cluster import LocalCluster
from repro.streaming.component import IteratorSpout, OutputCollector, TaskContext
from repro.streaming.groupings import FieldsGrouping
from repro.streaming.join import IncrementalJoinBolt
from repro.streaming.topology import TopologyBuilder
from repro.streaming.tuples import StreamTuple


def make_join(**kwargs):
    defaults = dict(
        key_field="user",
        left_source="clicks",
        right_source="buys",
        left_fields=("clicked",),
        right_fields=("bought",),
    )
    defaults.update(kwargs)
    bolt = IncrementalJoinBolt(**defaults)
    bolt.prepare(TaskContext("join", 0, 1))
    return bolt


def feed(bolt, source, values, fields):
    collector = OutputCollector("join", bolt.declare_output_fields())
    t = StreamTuple(values, fields, source=source)
    bolt.execute(t, collector)
    return collector.drain()


class TestJoinSemantics:
    def test_match_emitted_on_second_side(self):
        bolt = make_join()
        assert feed(bolt, "clicks", ("u1", "page-a"), ("user", "clicked")) == []
        out = feed(bolt, "buys", ("u1", "item-x"), ("user", "bought"))
        assert len(out) == 1
        assert out[0].as_dict() == {"user": "u1", "clicked": "page-a", "bought": "item-x"}

    def test_no_cross_key_matches(self):
        bolt = make_join()
        feed(bolt, "clicks", ("u1", "page-a"), ("user", "clicked"))
        assert feed(bolt, "buys", ("u2", "item-x"), ("user", "bought")) == []

    def test_joins_against_all_buffered_rows(self):
        bolt = make_join()
        feed(bolt, "clicks", ("u1", "page-a"), ("user", "clicked"))
        feed(bolt, "clicks", ("u1", "page-b"), ("user", "clicked"))
        out = feed(bolt, "buys", ("u1", "item-x"), ("user", "bought"))
        assert {t["clicked"] for t in out} == {"page-a", "page-b"}

    def test_symmetric(self):
        bolt = make_join()
        feed(bolt, "buys", ("u1", "item-x"), ("user", "bought"))
        out = feed(bolt, "clicks", ("u1", "page-a"), ("user", "clicked"))
        assert len(out) == 1
        assert out[0]["bought"] == "item-x"

    def test_buffer_bound_evicts_oldest(self):
        bolt = make_join(max_rows_per_key=2)
        for page in ("a", "b", "c"):
            feed(bolt, "clicks", ("u1", page), ("user", "clicked"))
        assert bolt.buffered_rows("left", "u1") == (("b",), ("c",))
        out = feed(bolt, "buys", ("u1", "item"), ("user", "bought"))
        assert {t["clicked"] for t in out} == {"b", "c"}

    def test_unknown_source_rejected(self):
        bolt = make_join()
        with pytest.raises(StreamRuntimeError):
            feed(bolt, "ghost", ("u1", "x"), ("user", "clicked"))

    def test_same_sides_rejected(self):
        with pytest.raises(StreamRuntimeError):
            IncrementalJoinBolt("k", "a", "a", ("x",), ("y",))

    def test_bad_buffer_bound(self):
        with pytest.raises(StreamRuntimeError):
            make_join(max_rows_per_key=0)

    def test_buffered_rows_side_validated(self):
        bolt = make_join()
        with pytest.raises(StreamRuntimeError):
            bolt.buffered_rows("middle", "u1")


def join_topology(clicks, buys):
    builder = TopologyBuilder("click-buy-join")
    builder.set_spout("clicks", IteratorSpout(iter(clicks), ["user", "clicked"]))
    builder.set_spout("buys", IteratorSpout(iter(buys), ["user", "bought"]))
    builder.set_bolt(
        "join",
        IncrementalJoinBolt(
            "user", "clicks", "buys", ("clicked",), ("bought",)
        ),
        [
            ("clicks", FieldsGrouping(["user"])),
            ("buys", FieldsGrouping(["user"])),
        ],
    )
    return builder.build()


class TestJoinInTopology:
    CLICKS = [("u1", "a"), ("u2", "b"), ("u1", "c")]
    BUYS = [("u1", "x"), ("u3", "y"), ("u2", "z")]

    def expected_matches(self):
        return {("u1", "a", "x"), ("u1", "c", "x"), ("u2", "b", "z")}

    def test_end_to_end_join(self):
        cluster = LocalCluster(join_topology(self.CLICKS, self.BUYS))
        cluster.run()
        got = {
            (t["user"], t["clicked"], t["bought"]) for t in cluster.outputs["join"]
        }
        assert got == self.expected_matches()

    def test_join_state_survives_sr3_recovery(self):
        sim = Simulator()
        net = Network(sim)
        overlay = Overlay(sim, net, rng=random.Random(4))
        overlay.build(64)
        backend = SR3StateBackend(
            RecoveryManager(RecoveryContext(sim, net, overlay)), num_shards=2
        )
        cluster = LocalCluster(
            join_topology(self.CLICKS, self.BUYS), backend=backend
        )
        cluster.protect_stateful_tasks()
        # Interleave: process part of both streams, checkpoint, crash.
        cluster.run(max_emissions=3)
        cluster.checkpoint()
        cluster.kill_task("join")
        cluster.recover_task("join")
        cluster.run()
        got = {
            (t["user"], t["clicked"], t["bought"]) for t in cluster.outputs["join"]
        }
        assert got == self.expected_matches()
