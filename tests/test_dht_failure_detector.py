"""Tests for the heartbeat failure detector."""

import random

import pytest

from repro.dht.failure_detector import DetectorConfig, FailureDetector
from repro.dht.overlay import Overlay
from repro.errors import OverlayError
from repro.sim.kernel import Simulator
from repro.sim.network import Network


def build(count=40, seed=0, config=None):
    sim = Simulator()
    net = Network(sim)
    overlay = Overlay(sim, net, leaf_set_size=8, rng=random.Random(seed))
    overlay.build(count)
    detector = FailureDetector(overlay, config or DetectorConfig())
    return sim, overlay, detector


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(period=0)
        with pytest.raises(ValueError):
            DetectorConfig(suspicion_threshold=0)

    def test_expected_delay(self):
        config = DetectorConfig(period=2.0, suspicion_threshold=3)
        assert config.expected_detection_delay == 7.0


class TestDetection:
    def test_crash_is_detected_within_bound(self):
        sim, overlay, detector = build()
        detector.start()
        victim = overlay.nodes[0]
        crash_time = 5.3
        sim.schedule_at(crash_time, lambda: (victim.fail(), overlay.network.fail_host(victim.host)))
        sim.run(until=30.0)
        detected = detector.detected_by_anyone(victim)
        assert detected is not None
        latency = detected - crash_time
        config = detector.config
        assert latency <= config.period * (config.suspicion_threshold + 1)

    def test_no_false_positives_without_failures(self):
        sim, overlay, detector = build()
        detector.start()
        sim.run(until=20.0)
        assert detector.detections == []
        assert detector.false_positives() == []

    def test_multiple_watchers_detect(self):
        sim, overlay, detector = build()
        detector.start()
        victim = overlay.nodes[3]
        sim.schedule_at(2.0, victim.fail)
        sim.run(until=15.0)
        watchers = {w for w, name, _ in detector.detections if name == victim.name}
        assert len(watchers) >= 2  # every leaf-set holder notices

    def test_callback_fires_once_per_watcher(self):
        sim, overlay, detector = build()
        calls = []
        detector.on_failure = lambda watcher, member, t: calls.append(
            (watcher.name, member.name)
        )
        detector.start()
        victim = overlay.nodes[1]
        sim.schedule_at(1.0, victim.fail)
        sim.run(until=30.0)
        assert calls
        assert len(calls) == len(set(calls))

    def test_faster_heartbeats_detect_sooner(self):
        latencies = []
        for period in (0.5, 4.0):
            sim, overlay, detector = build(
                config=DetectorConfig(period=period, suspicion_threshold=3)
            )
            detector.start()
            victim = overlay.nodes[0]
            sim.schedule_at(3.0, victim.fail)
            sim.run(until=60.0)
            latencies.append(detector.detected_by_anyone(victim) - 3.0)
        assert latencies[0] < latencies[1]

    def test_heartbeats_cost_control_traffic(self):
        sim, overlay, detector = build()
        detector.start()
        sim.run(until=10.0)
        assert overlay.network.total_control_bytes > 0

    def test_double_start_rejected(self):
        _, _, detector = build()
        detector.start()
        with pytest.raises(OverlayError):
            detector.start()

    def test_stop_halts_rounds(self):
        sim, overlay, detector = build()
        detector.start()
        sim.run(until=5.0)
        detector.stop()
        bytes_at_stop = overlay.network.total_control_bytes
        sim.run(until=20.0)
        assert overlay.network.total_control_bytes == bytes_at_stop

    def test_detection_triggers_recovery_end_to_end(self):
        """Detector callback kicks off SR3 recovery, as a deployment would."""
        from repro.recovery.manager import RecoveryManager
        from repro.recovery.model import RecoveryContext
        from repro.state.partitioner import partition_synthetic
        from repro.state.version import StateVersion
        from repro.util.sizes import MB

        sim, overlay, detector = build(count=64, seed=2)
        manager = RecoveryManager(
            RecoveryContext(sim, overlay.network, overlay)
        )
        owner = overlay.nodes[0]
        shards = partition_synthetic("app/s", 8 * MB, 4, StateVersion(0.0, 1))
        manager.register(owner, shards, 2)
        manager.save("app/s")
        sim.run_until_idle()

        handles = []
        recovered_owners = set()

        def react(watcher, member, t):
            if member.name == owner.name and owner.name not in recovered_owners:
                recovered_owners.add(owner.name)
                handles.extend(manager.on_failures([owner]))

        detector.on_failure = react
        detector.start()
        # Crash without instant leaf-set repair: detection comes first in a
        # real deployment; repair happens as part of handling the failure.
        sim.schedule_at(4.0, lambda: overlay.fail_node(owner, repair=False))
        sim.run(until=60.0)
        assert len(handles) == 1
        assert handles[0].done
        assert handles[0].result.duration > 0
