"""Integration tests for the local cluster executor and SR3 backend."""

import random
from collections import Counter

import pytest

from repro.dht.overlay import Overlay
from repro.errors import RecoveryError, StateError, StreamRuntimeError, TopologyError
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import RecoveryContext
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.streaming.backend import SR3StateBackend
from repro.streaming.cluster import LocalCluster
from repro.streaming.component import FunctionBolt, IteratorSpout
from repro.streaming.groupings import FieldsGrouping, GlobalGrouping
from repro.streaming.stateful import CountingBolt
from repro.streaming.topology import TopologyBuilder

WORDS = ["apple", "pear", "apple", "plum", "apple", "pear", "fig"] * 30


def wordcount_topology(parallelism=2):
    builder = TopologyBuilder("wc")
    builder.set_spout("source", IteratorSpout(((w,) for w in WORDS), ["word"]))
    builder.set_bolt(
        "count",
        CountingBolt("word"),
        [("source", FieldsGrouping(["word"]))],
        parallelism=parallelism,
    )
    return builder.build()


def sr3_backend(seed=0, num_nodes=64):
    sim = Simulator()
    net = Network(sim)
    overlay = Overlay(sim, net, rng=random.Random(seed))
    overlay.build(num_nodes)
    manager = RecoveryManager(RecoveryContext(sim, net, overlay))
    return SR3StateBackend(manager, num_shards=4, num_replicas=2)


class TestExecution:
    def test_counts_match_ground_truth(self):
        cluster = LocalCluster(wordcount_topology())
        cluster.run()
        merged = {}
        for bolt in cluster.stateful_tasks().values():
            merged.update(dict(bolt.state.items()))
        assert merged == dict(Counter(WORDS))

    def test_fields_grouping_partitions_keys(self):
        cluster = LocalCluster(wordcount_topology(parallelism=3))
        cluster.run()
        seen = {}
        for (component, index), bolt in cluster.stateful_tasks().items():
            for word in dict(bolt.state.items()):
                assert word not in seen, "key on two tasks"
                seen[word] = index
        assert set(seen) == set(WORDS)

    def test_outputs_captured_for_terminal_components(self):
        cluster = LocalCluster(wordcount_topology())
        cluster.run()
        assert len(cluster.outputs["count"]) == len(WORDS)

    def test_max_emissions_cap(self):
        cluster = LocalCluster(wordcount_topology())
        emitted = cluster.run(max_emissions=10)
        assert emitted == 10

    def test_executed_counts(self):
        cluster = LocalCluster(wordcount_topology())
        cluster.run()
        assert cluster.executed_counts["count"] == len(WORDS)

    def test_multi_stage_pipeline(self):
        builder = TopologyBuilder("pipeline")
        builder.set_spout("nums", IteratorSpout(((i,) for i in range(10)), ["n"]))
        builder.set_bolt("double", FunctionBolt(lambda t: [(t["n"] * 2,)], ["n"]), ["nums"])
        builder.set_bolt(
            "evens_only",
            FunctionBolt(lambda t: [(t["n"],)] if t["n"] % 4 == 0 else [], ["n"]),
            ["double"],
        )
        cluster = LocalCluster(builder.build())
        cluster.run()
        values = [t["n"] for t in cluster.outputs["evens_only"]]
        assert values == [0, 4, 8, 12, 16]

    def test_unknown_task_lookup(self):
        cluster = LocalCluster(wordcount_topology())
        with pytest.raises(TopologyError):
            cluster.task("ghost")


class TestFailureWithoutBackend:
    def test_killed_task_rejects_tuples(self):
        cluster = LocalCluster(wordcount_topology(parallelism=1))
        cluster.kill_task("count", 0)
        with pytest.raises(StreamRuntimeError):
            cluster.run()

    def test_stateless_restart_loses_state(self):
        cluster = LocalCluster(wordcount_topology(parallelism=1))
        cluster.run(max_emissions=50)
        cluster.kill_task("count", 0)
        cluster.recover_task("count", 0)
        assert len(cluster.task("count", 0).state) == 0

    def test_recover_alive_task_rejected(self):
        cluster = LocalCluster(wordcount_topology())
        with pytest.raises(StreamRuntimeError):
            cluster.recover_task("count", 0)

    def test_kill_unknown_task_rejected(self):
        cluster = LocalCluster(wordcount_topology())
        with pytest.raises(TopologyError):
            cluster.kill_task("ghost", 0)


class TestSR3Integration:
    def test_state_recovered_exactly(self):
        backend = sr3_backend()
        cluster = LocalCluster(wordcount_topology(), backend=backend)
        cluster.protect_stateful_tasks()
        cluster.run()
        expected = {
            key: dict(bolt.state.items())
            for key, bolt in cluster.stateful_tasks().items()
        }
        cluster.checkpoint()
        cluster.kill_task("count", 0)
        cluster.kill_task("count", 1)
        cluster.recover_task("count", 0)
        cluster.recover_task("count", 1)
        for key, bolt in cluster.stateful_tasks().items():
            assert dict(bolt.state.items()) == expected[key]

    def test_processing_resumes_after_recovery(self):
        backend = sr3_backend(seed=1)
        builder = TopologyBuilder("wc")
        first, second = WORDS[:100], WORDS[100:]
        builder.set_spout(
            "source", IteratorSpout(((w,) for w in first + second), ["word"])
        )
        builder.set_bolt(
            "count", CountingBolt("word"), [("source", GlobalGrouping())]
        )
        cluster = LocalCluster(builder.build(), backend=backend)
        cluster.protect_stateful_tasks()
        cluster.run(max_emissions=100)
        cluster.checkpoint()
        cluster.kill_task("count", 0)
        cluster.recover_task("count", 0)
        cluster.run()
        assert dict(cluster.task("count", 0).state.items()) == dict(Counter(WORDS))

    def test_unprotected_checkpoint_rejected(self):
        cluster = LocalCluster(wordcount_topology())
        with pytest.raises(StreamRuntimeError):
            cluster.checkpoint()
        with pytest.raises(StreamRuntimeError):
            cluster.protect_stateful_tasks()

    def test_backend_refreshes_on_resave(self):
        backend = sr3_backend(seed=2)
        cluster = LocalCluster(wordcount_topology(parallelism=1), backend=backend)
        cluster.protect_stateful_tasks()
        cluster.run(max_emissions=30)
        cluster.checkpoint()
        cluster.run()
        cluster.checkpoint()  # second round refreshes shards
        cluster.kill_task("count", 0)
        cluster.recover_task("count", 0)
        assert dict(cluster.task("count", 0).state.items()) == dict(Counter(WORDS))


class TestBackendUnit:
    def test_protect_duplicate_rejected(self):
        backend = sr3_backend()
        from repro.state.store import StateStore

        store = StateStore("t/state")
        node = backend.manager.ctx.overlay.nodes[0]
        backend.protect("t", store, node)
        with pytest.raises(StateError):
            backend.protect("t", store, node)

    def test_recover_unsaved_rejected(self):
        backend = sr3_backend()
        from repro.state.store import StateStore

        store = StateStore("t/state")
        backend.protect("t", store, backend.manager.ctx.overlay.nodes[0])
        with pytest.raises(RecoveryError):
            backend.recover_task("t")

    def test_unknown_task_rejected(self):
        backend = sr3_backend()
        with pytest.raises(StateError):
            backend.save_task("ghost")

    def test_invalid_config(self):
        backend = sr3_backend()
        with pytest.raises(StateError):
            SR3StateBackend(backend.manager, num_shards=0)

    def test_recovery_onto_replacement_after_node_failure(self):
        backend = sr3_backend(seed=3)
        from repro.state.store import StateStore

        overlay = backend.manager.ctx.overlay
        store = StateStore("t/state")
        for i in range(100):
            store.put(f"k{i}", i)
        node = overlay.nodes[0]
        backend.protect("t", store, node)
        backend.save_task("t")
        backend.sim.run_until_idle()
        overlay.fail_node(node)
        recovered, result = backend.recover_task("t")
        assert dict(recovered.items()) == {f"k{i}": i for i in range(100)}
        assert result.duration > 0
