"""Tests for the declarative chaos scenario DSL and the shipped catalog."""

import pytest

from repro.chaos import (
    CAMPAIGNS,
    DEFAULT_CHECKERS,
    KNOWN_MECHANISMS,
    SCENARIOS,
    SR3_MECHANISMS,
    CrashWave,
    MidRecoveryCrash,
    Scenario,
    campaign_scenarios,
)
from repro.errors import SimulationError


class TestScenarioValidation:
    def test_needs_a_name(self):
        with pytest.raises(SimulationError, match="needs a name"):
            Scenario(name="")

    def test_needs_nodes_and_states(self):
        with pytest.raises(SimulationError):
            Scenario(name="t", num_nodes=2)
        with pytest.raises(SimulationError):
            Scenario(name="t", num_states=0)

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(SimulationError, match="unknown mechanism"):
            Scenario(name="t", mechanisms=("raft",))

    def test_normalizes_lists_to_tuples(self):
        scenario = Scenario(name="t", mechanisms=["star", "line"])
        assert scenario.mechanisms == ("star", "line")
        assert isinstance(scenario.injections, tuple)

    def test_state_names_are_scoped(self):
        scenario = Scenario(name="t", num_states=2)
        assert scenario.state_names() == ["t/state-0", "t/state-1"]

    def test_with_seed_returns_new_spec(self):
        scenario = Scenario(name="t", seed=0)
        reseeded = scenario.with_seed(7)
        assert reseeded.seed == 7
        assert scenario.seed == 0
        assert reseeded.name == scenario.name


class TestDictRoundTrip:
    def test_round_trip_preserves_everything(self):
        scenario = Scenario(
            name="rt",
            description="round trip",
            num_nodes=16,
            seed=3,
            uplink_mbit=100.0,
            mechanisms=("star", "tree"),
            injections=(
                CrashWave(at=2.0, count=1),
                MidRecoveryCrash(target="replacement", delay=1.0),
            ),
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_catalog_round_trips(self):
        for scenario in SCENARIOS.values():
            assert Scenario.from_dict(scenario.to_dict()) == scenario


class TestTomlLoading:
    def test_load_from_toml(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        assert tomllib is not None
        path = tmp_path / "campaign.toml"
        path.write_text(
            "\n".join(
                [
                    "[[scenario]]",
                    'name = "toml-crash"',
                    "num_nodes = 16",
                    "num_states = 1",
                    'mechanisms = ["star"]',
                    "",
                    "[[scenario.injections]]",
                    'kind = "crash_wave"',
                    "at = 2.0",
                    "count = 1",
                    'victims = "owners"',
                ]
            )
        )
        scenarios = Scenario.from_toml(str(path))
        assert len(scenarios) == 1
        scenario = scenarios[0]
        assert scenario.name == "toml-crash"
        assert scenario.mechanisms == ("star",)
        assert scenario.injections == (CrashWave(at=2.0, count=1),)

    def test_empty_toml_rejected(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "empty.toml"
        path.write_text('title = "no scenarios here"\n')
        with pytest.raises(SimulationError, match=r"no \[\[scenario\]\] tables"):
            Scenario.from_toml(str(path))


class TestCatalog:
    def test_mechanism_names(self):
        assert set(SR3_MECHANISMS) < set(KNOWN_MECHANISMS)
        assert "checkpointing" in KNOWN_MECHANISMS

    def test_catalog_covers_required_fault_modes(self):
        kinds = {
            inj.kind
            for scenario in SCENARIOS.values()
            for inj in scenario.injections
        }
        assert {
            "crash_wave",
            "rack_failure",
            "poisson_churn",
            "network_partition",
            "bandwidth_flap",
            "straggler",
            "mid_recovery_crash",
        } <= kinds

    def test_at_least_four_invariant_checkers(self):
        assert len(DEFAULT_CHECKERS) >= 4

    def test_recrash_scenario_sweeps_all_sr3_mechanisms(self):
        recrash = SCENARIOS["mid-recovery-recrash"]
        assert set(SR3_MECHANISMS) <= set(recrash.mechanisms)

    def test_campaigns_resolve(self):
        for name in CAMPAIGNS:
            scenarios = campaign_scenarios(name)
            assert scenarios
            assert all(isinstance(s, Scenario) for s in scenarios)

    def test_unknown_campaign_rejected(self):
        with pytest.raises(SimulationError, match="unknown campaign"):
            campaign_scenarios("nope")
