"""Scaled-down integration checks of every figure's qualitative shape.

These run the same experiment functions as ``benchmarks/`` but with small
parameters, asserting the *claims* of Sec. 5 (orderings, monotonicity,
crossovers), never absolute seconds.
"""

import pytest

from repro.bench import experiments as exp
from repro.util.stats import mean


@pytest.fixture(scope="module")
def fig8a():
    return exp.fig8a_recovery_no_constraint(sizes_mb=(8, 32, 128))


@pytest.fixture(scope="module")
def fig8b():
    return exp.fig8b_recovery_bw_constraint(sizes_mb=(8, 32, 128))


class TestFig8a:
    def test_sr3_beats_checkpointing_everywhere(self, fig8a):
        for row in fig8a.rows:
            for mech in ("star_s", "line_s", "tree_s"):
                assert row[mech] < row["checkpointing_s"]

    def test_paper_band_at_least_35_percent(self, fig8a):
        """SR3 achieves 35.5%-65% less recovery time than checkpointing."""
        for row in fig8a.rows:
            best = min(row["star_s"], row["line_s"], row["tree_s"])
            assert 1 - best / row["checkpointing_s"] >= 0.355

    def test_star_fastest_small_state(self, fig8a):
        small = fig8a.rows[0]
        assert small["star_s"] <= small["line_s"]
        assert small["star_s"] <= small["tree_s"]

    def test_line_slowest_sr3_large_state(self, fig8a):
        large = fig8a.rows[-1]
        assert large["line_s"] >= large["star_s"] >= large["tree_s"]

    def test_recovery_time_grows_with_state(self, fig8a):
        for mech in ("checkpointing_s", "star_s", "line_s"):
            series = fig8a.column(mech)
            assert series == sorted(series)


class TestFig8b:
    def test_sr3_beats_checkpointing_everywhere(self, fig8b):
        for row in fig8b.rows:
            for mech in ("star_s", "line_s", "tree_s"):
                assert row[mech] < row["checkpointing_s"]

    def test_star_slowest_sr3_large_state(self, fig8b):
        large = fig8b.rows[-1]
        assert large["star_s"] >= large["line_s"]
        assert large["star_s"] >= large["tree_s"]

    def test_tree_best_at_extreme_state(self, fig8b):
        extreme = fig8b.rows[-1]
        assert extreme["tree_s"] == min(
            extreme["star_s"], extreme["line_s"], extreme["tree_s"]
        )

    def test_constraint_slows_recovery(self, fig8a, fig8b):
        for row_u, row_c in zip(fig8a.rows, fig8b.rows):
            assert row_c["checkpointing_s"] >= row_u["checkpointing_s"]
            assert row_c["star_s"] >= row_u["star_s"]


class TestFig8c:
    @pytest.fixture(scope="class")
    def fig8c(self):
        return exp.fig8c_save_time(sizes_mb=(8, 128))

    def test_sr3_save_slower_for_small_state(self, fig8c):
        small = fig8c.rows[0]
        assert small["sr3_s"] >= small["checkpointing_s"] * 0.9

    def test_sr3_save_faster_for_large_state(self, fig8c):
        large = fig8c.rows[-1]
        assert large["sr3_s"] < large["checkpointing_s"]


class TestFig9:
    def test_star_flat_in_fanout(self):
        result = exp.fig9a_star_fanout(fanout_bits=(1, 4), sizes_mb=(16,))
        times = result.column("recovery_s")
        assert max(times) - min(times) < 0.2 * min(times)

    def test_line_grows_with_path_length(self):
        result = exp.fig9b_line_path_length(path_lengths=(4, 16, 64), sizes_mb=(16,))
        times = result.column("recovery_s")
        assert times == sorted(times)
        assert times[-1] > times[0]

    def test_tree_grows_with_branch_depth(self):
        result = exp.fig9c_tree_branch_depth(depths=(4, 16, 64), sizes_mb=(16,))
        times = result.column("recovery_s")
        assert times == sorted(times)
        assert times[-1] > times[0]

    def test_tree_falls_with_fanout(self):
        result = exp.fig9d_tree_fanout(fanout_bits=(1, 2, 3), sizes_mb=(64,))
        times = result.column("recovery_s")
        assert times[-1] < times[0]
        # Larger state is never cheaper at the same fan-out.
        big = exp.fig9d_tree_fanout(fanout_bits=(1,), sizes_mb=(128,))
        assert big.rows[0]["recovery_s"] > result.rows[0]["recovery_s"]


class TestFig10:
    @pytest.mark.parametrize("mechanism", ["star", "line", "tree"])
    def test_recovery_grows_slightly_and_replicas_help(self, mechanism):
        result = exp.fig10_simultaneous_failures(
            mechanism, failure_counts=(0, 20, 40), replicas=(2, 3)
        )
        r2 = result.series("replicas", 2, "recovery_s")
        r3 = result.series("replicas", 3, "recovery_s")
        # Non-decreasing with failures.
        assert r2 == sorted(r2)
        assert r3 == sorted(r3)
        # Larger replication factor is "lightly less" (within placement
        # noise, never meaningfully slower) at max failures.
        assert r3[-1] <= r2[-1] * 1.02
        # "Slightly": the growth stays moderate (< 50%).
        assert r2[-1] <= 1.5 * r2[0]


class TestFig11:
    @pytest.fixture(scope="class")
    def balance(self):
        return exp.fig11_load_balance(num_apps=40, num_nodes=400, seed=1)

    def test_everyone_stores_a_fair_share(self, balance):
        counts = balance.extra["counts"]
        # 40 apps x 64 shards x 2 replicas over 400 nodes = 12.8 mean.
        assert mean(counts) == pytest.approx(12.8)

    def test_no_centralized_hotspot(self, balance):
        counts = balance.extra["counts"]
        assert max(counts) < 8 * mean(counts)

    def test_more_apps_scale_linearly(self):
        small = exp.fig11_load_balance(num_apps=20, num_nodes=400, seed=1)
        large = exp.fig11_load_balance(num_apps=40, num_nodes=400, seed=1)
        ratio = mean(large.extra["counts"]) / mean(small.extra["counts"])
        assert ratio == pytest.approx(2.0, rel=0.05)


class TestFig12:
    def test_cpu_overhead_lower_for_sr3(self):
        result = exp.fig12a_cpu_overhead(duration_s=50.0, step_s=2.0)
        cp = mean(result.column("checkpointing"))
        for mech in ("star", "line", "tree"):
            assert mean(result.column(mech)) < cp

    def test_memory_overhead_lower_for_sr3(self):
        result = exp.fig12b_memory_overhead(duration_s=50.0, step_s=2.0)
        cp = mean(result.column("checkpointing"))
        for mech in ("star", "line", "tree"):
            assert mean(result.column(mech)) < cp

    def test_maintenance_grows_slowly(self):
        result = exp.fig12c_network_overhead(node_counts=(20, 80, 320), duration_s=120.0)
        rates = result.column("bytes_per_node_per_second")
        # Per-node rate grows, but far slower than the node count (16x).
        assert rates[0] < rates[-1] < 2 * rates[0]


class TestTable1AndAblations:
    def test_table1_sr3_row(self):
        result = exp.table1_overview()
        sr3_row = next(r for r in result.rows if r["system"] == "SR3")
        assert sr3_row["scales_to_large_state"]
        assert sr3_row["handles_multiple_failures"]
        assert sr3_row["policy"] == "dynamic"
        assert len(result.rows) == 11

    def test_fp4s_ablation_reproduces_claims(self):
        result = exp.ablation_fp4s(sizes_mb=(128,))
        row = result.rows[0]
        # 62.5% storage increment (Sec. 2.3).
        assert row["fp4s_storage_overhead"] == pytest.approx(0.625)
        # Roughly +10 s of coding overhead at 128 MB.
        extra = row["fp4s_recovery_s"] - row["star_recovery_s"]
        assert 5.0 < extra < 15.0

    def test_replication_factor_ablation(self):
        result = exp.ablation_replication_factor(factors=(2, 4), state_mb=32)
        saves = result.column("save_s")
        stored = result.column("stored_bytes")
        assert saves[1] > saves[0]
        assert stored[1] == pytest.approx(2 * stored[0])

    def test_selection_validation_runs(self):
        result = exp.ablation_selection_validation()
        assert len(result.rows) == 4
        # In the constrained large-state regime the heuristic's pick is
        # measured fastest (the paper's headline selection case).
        row = next(r for r in result.rows if r["state_mb"] == 128 and r["constrained"])
        assert row["chosen"] == row["fastest"] == "tree"

    def test_baseline_matrix_spans_all_approaches(self):
        result = exp.baseline_matrix(state_mb=32)
        approaches = set(result.column("approach"))
        assert approaches == {
            "sr3_star",
            "checkpointing",
            "replication",
            "lineage",
            "fp4s",
        }
        by_name = {r["approach"]: r["recovery_s"] for r in result.rows}
        assert by_name["replication"] < by_name["sr3_star"] < by_name["checkpointing"]
