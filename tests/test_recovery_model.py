"""Unit tests for the shared recovery machinery: cost model, handles."""

import pytest

from repro.errors import RecoveryError
from repro.recovery.model import (
    CostModel,
    RecoveryHandle,
    RecoveryResult,
    run_handles,
)
from repro.sim.kernel import Simulator
from repro.util.sizes import MB


class TestCostModel:
    def test_merge_time_linear(self):
        cost = CostModel()
        assert cost.merge_time(2 * MB) == pytest.approx(2 * cost.merge_time(1 * MB))

    def test_install_faster_than_merge(self):
        cost = CostModel()
        assert cost.install_time(64 * MB) < cost.merge_time(64 * MB)

    def test_partition_time(self):
        cost = CostModel(partition_rate=50 * MB)
        assert cost.partition_time(100 * MB) == pytest.approx(2.0)

    def test_lookup_penalty_zero_when_all_survive(self):
        cost = CostModel()
        assert cost.lookup_penalty(num_replicas=3, surviving=3) == 0.0

    def test_lookup_penalty_scales_with_loss_fraction(self):
        cost = CostModel()
        half = cost.lookup_penalty(2, 1)
        third = cost.lookup_penalty(3, 2)
        assert half > third > 0

    def test_lookup_penalty_validation(self):
        with pytest.raises(ValueError):
            CostModel().lookup_penalty(0, 0)

    def test_lookup_penalty_caps_surviving(self):
        cost = CostModel()
        assert cost.lookup_penalty(2, 5) == 0.0


def make_result(name="s"):
    return RecoveryResult(
        mechanism="star",
        state_name=name,
        state_bytes=1.0,
        started_at=1.0,
        finished_at=3.5,
        bytes_transferred=1.0,
        nodes_involved=2,
        shards_recovered=1,
        replacement="n1",
    )


class TestRecoveryHandle:
    def test_duration(self):
        assert make_result().duration == 2.5

    def test_unresolved_result_raises(self):
        handle = RecoveryHandle("star", "s")
        assert not handle.done
        with pytest.raises(RecoveryError):
            _ = handle.result

    def test_resolve_delivers_result_and_callbacks(self):
        handle = RecoveryHandle("star", "s")
        seen = []
        handle.on_done(seen.append)
        result = make_result()
        handle._resolve(result)
        assert handle.done
        assert handle.result is result
        assert seen == [result]

    def test_late_callback_fires_immediately(self):
        handle = RecoveryHandle("star", "s")
        handle._resolve(make_result())
        seen = []
        handle.on_done(seen.append)
        assert len(seen) == 1

    def test_double_resolve_rejected(self):
        handle = RecoveryHandle("star", "s")
        handle._resolve(make_result())
        with pytest.raises(RecoveryError):
            handle._resolve(make_result())

    def test_fail_propagates(self):
        handle = RecoveryHandle("star", "s")
        handle._fail(RecoveryError("boom"))
        assert handle.done
        with pytest.raises(RecoveryError, match="boom"):
            _ = handle.result


class TestRunHandles:
    def test_unresolved_handles_reported(self):
        sim = Simulator()
        stuck = RecoveryHandle("star", "stuck-state")
        with pytest.raises(RecoveryError, match="stuck-state"):
            run_handles(sim, [stuck])

    def test_resolved_via_simulation(self):
        sim = Simulator()
        handle = RecoveryHandle("star", "s")
        sim.schedule(1.0, lambda: handle._resolve(make_result()))
        results = run_handles(sim, [handle])
        assert results[0].state_name == "s"
