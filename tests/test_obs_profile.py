"""Critical-path extraction, blame attribution, and recovery profiles."""

import json

import pytest

from repro.bench.harness import build_scenario, saved_state, timed_recovery
from repro.obs import (
    BLAME_CATEGORIES,
    Tracer,
    blame_breakdown,
    blame_of,
    build_report,
    critical_path,
    profile_recovery,
    profile_tracers,
    recovery_roots,
    write_profile,
)
from repro.recovery import LineRecovery, StarRecovery
from repro.util.sizes import MB


def make_clocked_tracer(name="t"):
    tracer = Tracer(name)
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    return tracer, clock


def hand_built_recovery():
    """A star-shaped recovery: detect, two parallel fetches, merge.

    Timeline: detect [0,1], fetch A [1,3], fetch B [1,4], self-gap
    [4,4.5], merge [4.5,6]. The critical path must pick fetch B (the
    later finisher) and charge the gap to queueing.
    """
    tracer, clock = make_clocked_tracer()
    root = tracer.start("recovery/star", category="recovery", state="s", state_bytes=80.0)
    tracer.record("detect", 0.0, 1.0, category="recovery.detect", parent=root)
    tracer.record(
        "fetch shard 0", 1.0, 3.0, category="recovery.transfer", parent=root, bytes=40.0
    )
    tracer.record(
        "fetch shard 1", 1.0, 4.0, category="recovery.transfer", parent=root, bytes=40.0
    )
    tracer.record("merge", 4.5, 6.0, category="recovery.merge", parent=root, bytes=80.0)
    clock["now"] = 6.0
    root.finish()
    return tracer, root


def run_recovery(mechanism, seed=7, state_bytes=64 * MB, trace="run"):
    tracer = Tracer(trace)
    scenario = build_scenario(num_nodes=32, seed=seed, tracer=tracer)
    saved_state(scenario, "app/state", state_bytes)
    result = timed_recovery(scenario, mechanism, "app/state")
    return tracer, result


class TestBlameTaxonomy:
    def test_known_categories(self):
        assert blame_of("recovery.detect") == "detection"
        assert blame_of("recovery.transfer") == "transfer"
        assert blame_of("net.flow") == "transfer"
        assert blame_of("recovery.merge") == "merge"
        assert blame_of("recovery.install") == "merge"
        assert blame_of("recovery.tree_build") == "control"

    def test_unknown_categories_fall_to_queueing(self):
        assert blame_of("") == "queueing"
        assert blame_of("sim.event") == "queueing"


class TestCriticalPath:
    def test_segments_tile_the_makespan(self):
        tracer, root = hand_built_recovery()
        segments = critical_path(tracer, root)
        assert segments[0].start == pytest.approx(root.start)
        assert segments[-1].end == pytest.approx(root.end)
        for prev, nxt in zip(segments, segments[1:]):
            assert prev.end == pytest.approx(nxt.start)
        covered = sum(s.duration for s in segments)
        assert covered == pytest.approx(root.duration)

    def test_latest_finishing_child_wins(self):
        tracer, root = hand_built_recovery()
        names = [s.name for s in critical_path(tracer, root)]
        assert "fetch shard 1" in names  # ends at 4.0
        assert "fetch shard 0" not in names  # ends at 3.0, off the path

    def test_gap_charged_to_parent_as_queueing(self):
        tracer, root = hand_built_recovery()
        segments = critical_path(tracer, root)
        gaps = [s for s in segments if s.span_id == root.span_id]
        assert len(gaps) == 1
        assert gaps[0].blame == "queueing"
        assert gaps[0].duration == pytest.approx(0.5)

    def test_blame_seconds_sum_to_makespan(self):
        tracer, root = hand_built_recovery()
        seconds = blame_breakdown(critical_path(tracer, root))
        assert set(seconds) == set(BLAME_CATEGORIES)
        assert sum(seconds.values()) == pytest.approx(root.duration)
        assert seconds["detection"] == pytest.approx(1.0)
        assert seconds["transfer"] == pytest.approx(3.0)
        assert seconds["merge"] == pytest.approx(1.5)

    def test_bytes_attributed_proportionally(self):
        tracer, root = hand_built_recovery()
        segments = critical_path(tracer, root)
        fetch = next(s for s in segments if s.name == "fetch shard 1")
        assert fetch.bytes_attributed == pytest.approx(40.0)

    def test_recovery_roots_excludes_saves_by_default(self):
        tracer, clock = make_clocked_tracer()
        save = tracer.start("recovery/save", category="recovery")
        rec = tracer.start("recovery/star", category="recovery")
        clock["now"] = 2.0
        save.finish()
        rec.finish()
        assert recovery_roots(tracer) == [rec]
        assert set(recovery_roots(tracer, include_saves=True)) == {save, rec}


class TestRecoveryProfile:
    def test_profile_of_hand_built_trace(self):
        tracer, root = hand_built_recovery()
        profile = profile_recovery(tracer, root)
        assert profile.mechanism == "star"
        assert profile.makespan == pytest.approx(6.0)
        assert sum(profile.blame_fractions.values()) == pytest.approx(1.0)
        assert profile.dominant_blame == "transfer"
        assert profile.bytes_on_critical_path == pytest.approx(40.0)
        assert profile.state_bytes == pytest.approx(80.0)

    def test_star_vs_line_seeded_run(self):
        """The acceptance scenario: both mechanisms profiled end to end."""
        tracers = []
        for mechanism in (StarRecovery(), LineRecovery()):
            tracer, result = run_recovery(mechanism)
            tracers.append((tracer, result))
        report = build_report([t for t, _ in tracers])
        assert {p.mechanism for p in report.profiles} == {"star", "line"}
        for profile, (_, result) in zip(report.profiles, tracers):
            assert sum(profile.blame_fractions.values()) == pytest.approx(1.0)
            # The critical path tiles the root span, which covers the
            # mechanism's reported makespan.
            covered = sum(s.duration for s in profile.segments)
            assert covered == pytest.approx(profile.makespan)
            assert profile.makespan >= result.duration - 1e-9

    def test_explanations_attached_with_model_error(self):
        tracer, _ = run_recovery(StarRecovery())
        report = build_report(tracer)
        (profile,) = report.profiles
        assert profile.explanation is not None
        payload = profile.explanation.to_dict()
        assert set(payload["predicted_seconds"]) == {"star", "line", "tree"}
        assert "star" in payload["observed_seconds"]
        assert "star" in payload["model_error"]
        # The closed form should be in the right ballpark for a clean run.
        assert abs(payload["model_error"]["star"]) < 0.5

    def test_aggregates_and_table(self):
        tracer, _ = run_recovery(StarRecovery())
        report = build_report(tracer)
        aggregates = report.aggregates()
        assert aggregates["star"]["recoveries"] == 1
        assert aggregates["star"]["mean_makespan_s"] > 0
        table = report.format_table()
        assert "star" in table and "makespan" in table


class TestDeterminism:
    def test_same_seed_byte_identical_profiles(self, tmp_path):
        paths = []
        for i in range(2):
            tracer, _ = run_recovery(StarRecovery(), seed=5)
            path = tmp_path / f"profile-{i}.json"
            write_profile(str(path), tracer)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        payload = json.loads(paths[0].read_text())
        assert payload["format"] == "sr3-profile-1"
        assert payload["recoveries"] == 1

    def test_different_seeds_differ(self):
        a, _ = run_recovery(StarRecovery(), seed=5)
        b, _ = run_recovery(StarRecovery(), seed=6)
        assert build_report(a).to_json() != build_report(b).to_json()

    def test_profile_tracers_defaults_to_collector_list(self):
        tracer, _ = run_recovery(StarRecovery())
        assert len(profile_tracers(tracer)) == 1
        assert len(profile_tracers([tracer, tracer])) == 2
