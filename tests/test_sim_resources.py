"""Unit tests for CPU/memory resource profiles."""

import pytest

from repro.sim.resources import ResourceProfile, sample_grid


class TestResourceProfile:
    def test_baseline_only(self):
        p = ResourceProfile("n", baseline_cpu=0.2, baseline_memory=100.0)
        assert p.cpu_at(5.0) == 0.2
        assert p.memory_at(5.0) == 100.0

    def test_cpu_interval_applies_within_bounds(self):
        p = ResourceProfile("n")
        p.add_cpu(1.0, 3.0, 0.5)
        assert p.cpu_at(0.5) == 0.0
        assert p.cpu_at(2.0) == 0.5
        assert p.cpu_at(3.0) == 0.0  # half-open interval

    def test_overlapping_cpu_adds_and_clamps(self):
        p = ResourceProfile("n", baseline_cpu=0.3)
        p.add_cpu(0.0, 10.0, 0.5)
        p.add_cpu(0.0, 10.0, 0.6)
        assert p.cpu_at(5.0) == 1.0  # clamped

    def test_memory_adds(self):
        p = ResourceProfile("n", baseline_memory=50.0)
        p.add_memory(0.0, 2.0, 100.0)
        p.add_memory(1.0, 3.0, 25.0)
        assert p.memory_at(1.5) == 175.0
        assert p.memory_at(2.5) == 75.0

    def test_series_sampling(self):
        p = ResourceProfile("n")
        p.add_cpu(1.0, 2.0, 0.4)
        assert p.cpu_series([0.0, 1.5, 3.0]) == [0.0, 0.4, 0.0]

    def test_cpu_seconds_integral(self):
        p = ResourceProfile("n")
        p.add_cpu(0.0, 4.0, 0.25)
        assert p.cpu_seconds() == pytest.approx(1.0)

    def test_peak_memory(self):
        p = ResourceProfile("n", baseline_memory=10.0)
        p.add_memory(2.0, 4.0, 90.0)
        assert p.peak_memory([0.0, 3.0, 5.0]) == 100.0

    def test_invalid_intervals_rejected(self):
        p = ResourceProfile("n")
        with pytest.raises(ValueError):
            p.add_cpu(2.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            p.add_cpu(0.0, 1.0, -0.5)
        with pytest.raises(ValueError):
            p.add_memory(0.0, 1.0, -1.0)

    def test_invalid_baselines_rejected(self):
        with pytest.raises(ValueError):
            ResourceProfile("n", baseline_cpu=1.5)
        with pytest.raises(ValueError):
            ResourceProfile("n", baseline_memory=-1)


class TestSampleGrid:
    def test_grid_points(self):
        assert sample_grid(0.0, 3.0, 1.0) == [0.0, 1.0, 2.0]

    def test_empty_grid(self):
        assert sample_grid(5.0, 5.0, 1.0) == []

    def test_bad_step(self):
        with pytest.raises(ValueError):
            sample_grid(0.0, 1.0, 0.0)

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            sample_grid(2.0, 1.0, 0.5)
