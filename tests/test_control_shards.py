"""Shard-granular control: diagnoses, actions, policy, and the full loop."""

import pytest

from repro.bench.harness import build_scenario
from repro.control import (
    ControlConfig,
    Controller,
    ControlPlane,
    default_policy,
    shard_granular_policy,
)
from repro.control.actions import build_action
from repro.control.diagnose import Diagnosis, diagnose
from repro.recovery.standby import standby_coverage, standby_node_of, sync_standby
from repro.state.shard import Shard
from repro.state.version import StateVersion
from repro.util.sizes import MB

SKEWED = (4 * MB, 4 * MB, int(0.1 * MB), int(0.1 * MB))


def register_skewed(world, sizes=SKEWED, name="app/state", replicas=2):
    """A saved state whose partition is lopsided (two near-empty shards)."""
    version = StateVersion(world.sim.now, 1)
    shards = [
        Shard.synthetic_shard(name, i, len(sizes), version, size)
        for i, size in enumerate(sizes)
    ]
    registered = world.manager.register(world.overlay.nodes[0], shards, replicas)
    world.manager.save(name)
    world.sim.run_until_idle()
    return registered


def provision_standby(world, name="app/state"):
    registered = world.manager.states[name]
    standby = next(
        n
        for n in world.overlay.alive_nodes()
        if n.node_id != registered.owner.node_id
    )
    sync_standby(world.ctx, registered, standby)
    world.sim.run_until_idle()
    return registered, standby


def drop_one_warm_segment(registered, standby):
    key = next(
        p.replica.key
        for p in registered.plan.placements
        if getattr(p.replica, "standby", False)
    )
    standby.drop_shard(key)


def diag(condition, state=None, node=None, severity="warning", evidence=()):
    return Diagnosis(
        condition=condition,
        severity=severity,
        detected_at=0.0,
        state=state,
        node=node,
        evidence=tuple(evidence),
    )


class TestDiagnoseShardCold:
    def test_inert_at_the_default_factor(self, world):
        register_skewed(world)
        assert [d for d in diagnose(world) if d.condition == "shard-cold"] == []

    def test_fires_when_opted_in(self, world):
        register_skewed(world)
        found = [
            d
            for d in diagnose(world, cold_shard_factor=0.5)
            if d.condition == "shard-cold"
        ]
        assert len(found) == 1
        assert found[0].severity == "warning"
        assert found[0].state == "app/state"
        assert dict(found[0].evidence)["cold_shards"] == (2, 3)

    def test_needs_two_cold_shards(self, world):
        register_skewed(world, sizes=(4 * MB, 4 * MB, int(0.1 * MB), 4 * MB))
        assert [
            d
            for d in diagnose(world, cold_shard_factor=0.5)
            if d.condition == "shard-cold"
        ] == []

    def test_two_shard_states_are_left_alone(self, world):
        register_skewed(world, sizes=(4 * MB, int(0.1 * MB)))
        assert [
            d
            for d in diagnose(world, cold_shard_factor=0.9)
            if d.condition == "shard-cold"
        ] == []


class TestDiagnoseStandbyLagging:
    def test_full_coverage_is_healthy(self, world):
        world.save_synthetic()
        provision_standby(world)
        assert [
            d for d in diagnose(world) if d.condition == "standby-lagging"
        ] == []

    def test_lagging_standby_is_flagged(self, world):
        world.save_synthetic()
        registered, standby = provision_standby(world)
        drop_one_warm_segment(registered, standby)
        found = [
            d for d in diagnose(world) if d.condition == "standby-lagging"
        ]
        assert len(found) == 1
        assert found[0].node == standby.name
        evidence = dict(found[0].evidence)
        assert evidence["covered_segments"] == 3
        assert evidence["total_segments"] == 4

    def test_dead_owner_is_owner_lost_business(self, world):
        world.save_synthetic()
        registered, standby = provision_standby(world)
        drop_one_warm_segment(registered, standby)
        world.overlay.fail_node(registered.owner)
        conditions = {d.condition for d in diagnose(world)}
        assert "standby-lagging" not in conditions
        assert "owner-lost" in conditions


class TestSplitShard:
    def test_splits_the_hottest_shard(self, world):
        world.save_synthetic(size=8 * MB, shards=4)
        registered = world.manager.states["app/state"]
        outcome = build_action("split-shard").execute(
            world, diag("hot-shard", state="app/state")
        )
        assert outcome.ok and outcome.changed
        details = dict(outcome.details)
        assert details["num_shards"] == 5
        assert len(registered.shards) == 5
        assert sum(s.size_bytes for s in registered.shards) == 8 * MB
        assert all(
            len(registered.plan.providers_for(i)) == 2 for i in range(5)
        )

    def test_policy_can_pin_the_index(self, world):
        world.save_synthetic(size=8 * MB, shards=4)
        outcome = build_action("split-shard", shard_index=2).execute(
            world, diag("hot-shard", state="app/state")
        )
        assert dict(outcome.details)["split_index"] == 2

    def test_guards(self, world):
        outcome = build_action("split-shard").execute(
            world, diag("hot-shard", state="ghost")
        )
        assert not outcome.ok and "unknown state" in outcome.error
        registered, _ = world.save_synthetic()
        world.overlay.fail_node(registered.owner)
        outcome = build_action("split-shard").execute(
            world, diag("hot-shard", state="app/state")
        )
        assert not outcome.ok and "recover it" in outcome.error


class TestMergeShards:
    def test_merges_the_diagnosed_cold_pair(self, world):
        registered = register_skewed(world)
        diagnosis = next(
            d
            for d in diagnose(world, cold_shard_factor=0.5)
            if d.condition == "shard-cold"
        )
        outcome = build_action("merge-shards").execute(world, diagnosis)
        assert outcome.ok and outcome.changed
        details = dict(outcome.details)
        assert details["merged"] == "2+3"
        assert details["num_shards"] == 3
        assert len(registered.shards) == 3
        assert sum(s.size_bytes for s in registered.shards) == sum(SKEWED)

    def test_two_shards_is_the_floor(self, world):
        world.save_synthetic(shards=2)
        outcome = build_action("merge-shards").execute(
            world, diag("shard-cold", state="app/state")
        )
        assert outcome.ok and not outcome.changed

    def test_policy_can_pin_the_pair(self, world):
        world.save_synthetic(shards=4)
        outcome = build_action("merge-shards", index_a=1, index_b=0).execute(
            world, diag("shard-cold", state="app/state")
        )
        assert dict(outcome.details)["merged"] == "0+1"


class TestMigrateShard:
    def test_moves_one_replica_off_the_node(self, world):
        registered, _ = world.save_synthetic()
        source = registered.plan.providers_for(0)[0].node
        outcome = build_action("migrate-shard").execute(
            world, diag("hot-shard", state="app/state", node=source.name)
        )
        assert outcome.ok and outcome.changed
        details = dict(outcome.details)
        assert details["source"] == source.name
        moved = details["shard"]
        providers = registered.plan.providers_for(moved)
        assert len(providers) == 2
        assert source.node_id not in {p.node.node_id for p in providers}
        assert all(s.verify() for s in registered.plan.available_shards())

    def test_noop_on_unknown_or_dead_nodes(self, world):
        registered, _ = world.save_synthetic()
        outcome = build_action("migrate-shard").execute(
            world, diag("hot-shard", state="app/state", node="ghost")
        )
        assert outcome.ok and not outcome.changed
        source = registered.plan.providers_for(0)[0].node
        world.overlay.fail_node(source)
        outcome = build_action("migrate-shard").execute(
            world, diag("hot-shard", state="app/state", node=source.name)
        )
        assert outcome.ok and not outcome.changed

    def test_standby_copies_are_pinned(self, world):
        world.save_synthetic()
        registered, standby = provision_standby(world)
        before = standby_coverage(registered, standby)
        build_action("migrate-shard").execute(
            world, diag("hot-shard", state="app/state", node=standby.name)
        )
        # Whatever moved, the warm image did not.
        assert standby_coverage(registered, standby) == before


class TestPromoteStandby:
    def test_dead_owner_flips_to_the_standby(self, world):
        world.save_synthetic(size=32 * MB)
        registered, standby = provision_standby(world)
        world.overlay.fail_node(registered.owner)
        outcome = build_action("promote-standby").execute(
            world, diag("owner-lost", state="app/state", severity="critical")
        )
        assert outcome.ok and outcome.changed
        details = dict(outcome.details)
        assert details["promoted"] == standby.name
        assert details["mechanism"] == "standby"
        assert registered.owner is standby

    def test_lagging_standby_is_rewarmed(self, world):
        world.save_synthetic()
        registered, standby = provision_standby(world)
        drop_one_warm_segment(registered, standby)
        outcome = build_action("promote-standby").execute(
            world, diag("standby-lagging", state="app/state", node=standby.name)
        )
        assert outcome.ok and outcome.changed
        assert dict(outcome.details)["copied_segments"] == 1
        assert standby_coverage(registered, standby) == (4, 4)
        assert [
            d for d in diagnose(world) if d.condition == "standby-lagging"
        ] == []

    def test_fresh_standby_is_a_noop(self, world):
        world.save_synthetic()
        registered, standby = provision_standby(world)
        outcome = build_action("promote-standby").execute(
            world, diag("standby-lagging", state="app/state", node=standby.name)
        )
        assert outcome.ok and not outcome.changed
        assert dict(outcome.details)["standby"] == standby.name

    def test_requires_a_provisioned_standby(self, world):
        registered, _ = world.save_synthetic()
        assert standby_node_of(registered) is None
        outcome = build_action("promote-standby").execute(
            world, diag("owner-lost", state="app/state", severity="critical")
        )
        assert not outcome.ok and "no provisioned standby" in outcome.error


class TestPolicy:
    def test_shard_granular_reroutes_hot_shard(self):
        diagnosis = diag("hot-shard", state="app/state", node="node-1")
        granular = shard_granular_policy().lookup(diagnosis)
        assert granular.action == "split-shard"
        assert granular.escalation == "rebalance"
        assert default_policy().lookup(diagnosis).action == "rebalance"

    def test_shard_rows_ship_in_the_default_table(self):
        for table in (default_policy(), shard_granular_policy()):
            assert table.lookup(diag("shard-cold", state="s")).action == "merge-shards"
            assert (
                table.lookup(diag("standby-lagging", state="s")).action
                == "promote-standby"
            )


class TestControllerEndToEnd:
    def test_cold_shards_get_merged_and_verified(self, world):
        register_skewed(world)
        ctl = Controller(
            ControlPlane(
                sim=world.sim,
                network=world.network,
                overlay=world.overlay,
                manager=world.manager,
            ),
            config=ControlConfig(cold_shard_factor=0.5),
        )
        records = ctl.run()
        merges = [r for r in records if r.action == "merge-shards"]
        assert len(merges) == 1
        assert merges[0].verified
        assert len(world.manager.states["app/state"].shards) == 3
        assert [
            d for d in ctl.diagnose() if d.condition == "shard-cold"
        ] == []

    def test_opted_out_controller_never_sees_shard_cold(self, world):
        register_skewed(world)
        ctl = Controller(
            ControlPlane(
                sim=world.sim,
                network=world.network,
                overlay=world.overlay,
                manager=world.manager,
            )
        )
        assert [r for r in ctl.run() if r.action == "merge-shards"] == []

    def test_scenario_adapter_carries_the_knob(self):
        scenario = build_scenario(num_nodes=16, seed=1)
        ctl = Controller(
            ControlPlane.from_deployment(scenario),
            config=ControlConfig(cold_shard_factor=0.5),
        )
        assert ctl.config.cold_shard_factor == pytest.approx(0.5)
        assert ctl.run() == []
