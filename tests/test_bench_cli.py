"""Unit tests for the ``python -m repro.bench`` CLI."""

import json

import pytest

from repro.bench.__main__ import EXPERIMENTS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig8a"])
        assert args.experiment == "fig8a"
        assert args.seed == 0

    def test_mechanism_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig10", "--mechanism", "ring"])

    def test_scale_nodes_repeatable(self):
        args = build_parser().parse_args(
            ["scale", "--scale-nodes", "64", "--scale-nodes", "128"]
        )
        assert args.scale_nodes == [64, 128]
        assert build_parser().parse_args(["scale"]).scale_nodes is None

    def test_jobs_defaults_to_serial(self):
        assert build_parser().parse_args(["scale"]).jobs == 1
        args = build_parser().parse_args(["scale", "--jobs", "4"])
        assert args.jobs == 4


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        lines = {line.strip() for line in out.splitlines()}
        assert "experiments:" in lines
        assert "chaos scenarios:" in lines
        assert "chaos campaigns:" in lines
        for name in EXPERIMENTS:
            assert name in lines
        assert "saveamp" in lines
        assert "crash-wave" in lines
        assert "mid-recovery-recrash" in lines
        assert "smoke (3 scenarios)" in lines

    def test_list_includes_baseline_keys(self, tmp_path, capsys):
        from repro.bench.baseline import write_baseline

        path = tmp_path / "baseline.json"
        write_baseline(str(path), {"sim-0/star/app/state#0": 1.5})
        assert main(["--list", "--baseline", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"baseline keys ({path}):" in out
        assert "sim-0/star/app/state#0" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig12c" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SR3" in out and "Flink" in out

    def test_runs_fig9a_with_seed(self, capsys):
        assert main(["fig9a", "--seed", "2"]) == 0
        assert "fanout_bit" in capsys.readouterr().out

    def test_runs_fig10_with_mechanism(self, capsys):
        assert main(["fig10", "--mechanism", "tree"]) == 0
        assert "failures" in capsys.readouterr().out

    def test_runs_fig11_scaled(self, capsys):
        assert main(["fig11", "--apps", "10", "--nodes", "200"]) == 0
        assert "mean_shards_per_node" in capsys.readouterr().out


class TestScaleExperiment:
    def test_scale_smoke_rows_and_baseline_keys(self):
        from repro.bench import experiments as exp

        result = exp.scale_overlay(node_counts=(64,), state_mb=1)
        mechanisms = {row["mechanism"] for row in result.rows}
        assert mechanisms == {"star", "line", "tree"}
        assert all(row["nodes"] == 64 for row in result.rows)
        assert all(row["makespan_s"] > 0 for row in result.rows)
        assert all(row["wall_s"] >= 0 for row in result.rows)
        metrics = result.extra["baseline_metrics"]
        for mech in ("star", "line", "tree"):
            assert metrics[f"scale/64/{mech}"] > 0
            assert f"scale/64/{mech}/wall_s" in metrics
            assert f"scale/64/{mech}/events_per_s" in metrics

    def test_scale_simulated_makespans_deterministic(self):
        from repro.bench import experiments as exp

        first = exp.scale_overlay(node_counts=(64,), state_mb=1)
        second = exp.scale_overlay(node_counts=(64,), state_mb=1)

        def simulated(result):
            return {
                k: v
                for k, v in result.extra["baseline_metrics"].items()
                if not k.endswith(("/wall_s", "/events_per_s"))
            }

        assert simulated(first) == simulated(second)

    def test_scale_cli_with_custom_nodes(self, capsys):
        assert main(["scale", "--scale-nodes", "64"]) == 0
        out = capsys.readouterr().out
        assert "makespan_s" in out
        assert "wall_s" in out

    def test_scale_cli_nondefault_size_prints_informational_notice(self, capsys):
        assert main(["scale", "--scale-nodes", "64"]) == 0
        err = capsys.readouterr().err
        assert "scale/64/* results are informational, no baseline key" in err

    def test_scale_cli_default_sizes_get_no_notice(self, capsys):
        # 512 is a gated size: it must run without the informational notice.
        assert main(["run", "scale", "--scale-nodes", "512"]) == 0
        assert "informational" not in capsys.readouterr().err


class TestCampaign:
    def test_smoke_campaign_writes_report(self, tmp_path, capsys):
        out = tmp_path / "resilience-smoke.json"
        assert main(["--campaign", "smoke", "--campaign-out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["campaign"] == "smoke"
        assert data["summary"]["failed"] == 0
        assert data["outcomes"]
        captured = capsys.readouterr()
        assert "scenario" in captured.out
        assert "survived=" in captured.out
        assert str(out) in captured.err

    def test_unknown_campaign_errors(self, capsys):
        assert main(["--campaign", "nope"]) == 2
        assert "unknown campaign" in capsys.readouterr().err


class TestSubcommands:
    def test_list_subcommand(self, capsys):
        assert main(["list"]) == 0
        captured = capsys.readouterr()
        assert "experiments:" in captured.out
        assert "remediate" in captured.out
        assert "deprecated" not in captured.err

    def test_run_subcommand(self, capsys):
        assert main(["run", "fig9a", "--seed", "2"]) == 0
        captured = capsys.readouterr()
        assert "fanout_bit" in captured.out
        assert "deprecated" not in captured.err

    def test_run_without_experiment_is_usage_error(self, capsys):
        assert main(["run"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_campaign_subcommand_maps_flags(self, tmp_path, capsys):
        out = tmp_path / "resilience-smoke.json"
        assert main(["campaign", "smoke", "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["campaign"] == "smoke"
        assert data["summary"]["failed"] == 0

    def test_campaign_jobs_flag_writes_identical_report(self, tmp_path, capsys):
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        assert main(["campaign", "smoke", "--out", str(serial_out)]) == 0
        assert (
            main(["campaign", "smoke", "--jobs", "2", "--out", str(parallel_out)])
            == 0
        )
        capsys.readouterr()
        assert parallel_out.read_bytes() == serial_out.read_bytes()

    def test_control_subcommand(self, tmp_path, capsys):
        out = tmp_path / "resilience-control.json"
        assert main(["control", "--scenario", "crash-wave", "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "crash-wave" in captured.out
        assert "remediations=" in captured.out
        data = json.loads(out.read_text())
        assert data["outcomes"][0]["remediations"] >= 1

    def test_control_unknown_scenario(self, capsys):
        assert main(["control", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_legacy_flag_style_warns_on_stderr(self, capsys):
        assert main(["fig9a"]) == 0
        captured = capsys.readouterr()
        assert "fanout_bit" in captured.out
        assert "deprecated" in captured.err

    def test_legacy_list_flag_does_not_break(self, capsys):
        assert main(["--list"]) == 0
        assert "remediate" in capsys.readouterr().out


class TestDashboardSubcommand:
    def test_writes_selfcontained_html_and_timeline(self, tmp_path, capsys):
        import re

        out = tmp_path / "dash.html"
        assert main(["dashboard", "--out", str(out), "--duration", "20"]) == 0
        html = out.read_text(encoding="utf-8")
        assert "sr3-dashboard-1" in html
        assert "<script" not in html.lower()
        assert re.search(r"\b(src|href)\s*=", html, re.IGNORECASE) is None
        captured = capsys.readouterr()
        assert "slo-burning" in captured.out  # the alert timeline printed
        assert "recovered" in captured.out
        assert str(out) in captured.err

    def test_detector_mode(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        assert main(
            ["dashboard", "--out", str(out), "--mode", "detector", "--duration", "20"]
        ) == 0
        assert "heartbeat detector" in capsys.readouterr().out
        assert "detector.suspicion" in out.read_text(encoding="utf-8")


class TestUniformObservabilityFlags:
    def test_control_supports_metrics_and_trace(self, tmp_path, capsys):
        metrics_out = tmp_path / "metrics.json"
        trace_out = tmp_path / "trace.json"
        report_out = tmp_path / "resilience-control.json"
        assert (
            main(
                [
                    "control",
                    "--scenario",
                    "crash-wave",
                    "--out",
                    str(report_out),
                    "--metrics-out",
                    str(metrics_out),
                    "--trace",
                    str(trace_out),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "metrics written to" in captured.err
        assert "trace written to" in captured.err
        metrics = json.loads(metrics_out.read_text())
        assert metrics["format"] == "sr3-metrics-1"
        assert metrics["registries"]
        trace = json.loads(trace_out.read_text())
        assert trace["traceEvents"]  # the chaos cell joined the collector

    def test_campaign_supports_metrics_out(self, tmp_path, capsys):
        metrics_out = tmp_path / "metrics.json"
        report_out = tmp_path / "resilience-smoke.json"
        assert (
            main(
                [
                    "campaign",
                    "smoke",
                    "--out",
                    str(report_out),
                    "--metrics-out",
                    str(metrics_out),
                ]
            )
            == 0
        )
        assert "metrics written to" in capsys.readouterr().err
        assert json.loads(metrics_out.read_text())["registries"]
