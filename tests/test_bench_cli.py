"""Unit tests for the ``python -m repro.bench`` CLI."""

import json

import pytest

from repro.bench.__main__ import EXPERIMENTS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig8a"])
        assert args.experiment == "fig8a"
        assert args.seed == 0

    def test_mechanism_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig10", "--mechanism", "ring"])


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        lines = {line.strip() for line in out.splitlines()}
        assert "experiments:" in lines
        assert "chaos scenarios:" in lines
        assert "chaos campaigns:" in lines
        for name in EXPERIMENTS:
            assert name in lines
        assert "saveamp" in lines
        assert "crash-wave" in lines
        assert "mid-recovery-recrash" in lines
        assert "smoke (3 scenarios)" in lines

    def test_list_includes_baseline_keys(self, tmp_path, capsys):
        from repro.bench.baseline import write_baseline

        path = tmp_path / "baseline.json"
        write_baseline(str(path), {"sim-0/star/app/state#0": 1.5})
        assert main(["--list", "--baseline", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"baseline keys ({path}):" in out
        assert "sim-0/star/app/state#0" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig12c" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SR3" in out and "Flink" in out

    def test_runs_fig9a_with_seed(self, capsys):
        assert main(["fig9a", "--seed", "2"]) == 0
        assert "fanout_bit" in capsys.readouterr().out

    def test_runs_fig10_with_mechanism(self, capsys):
        assert main(["fig10", "--mechanism", "tree"]) == 0
        assert "failures" in capsys.readouterr().out

    def test_runs_fig11_scaled(self, capsys):
        assert main(["fig11", "--apps", "10", "--nodes", "200"]) == 0
        assert "mean_shards_per_node" in capsys.readouterr().out


class TestCampaign:
    def test_smoke_campaign_writes_report(self, tmp_path, capsys):
        out = tmp_path / "resilience-smoke.json"
        assert main(["--campaign", "smoke", "--campaign-out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["campaign"] == "smoke"
        assert data["summary"]["failed"] == 0
        assert data["outcomes"]
        captured = capsys.readouterr()
        assert "scenario" in captured.out
        assert "survived=" in captured.out
        assert str(out) in captured.err

    def test_unknown_campaign_errors(self, capsys):
        assert main(["--campaign", "nope"]) == 2
        assert "unknown campaign" in capsys.readouterr().err
