"""Split/merge/migrate state-plane primitives and placement under loss."""

import pytest

from repro.errors import ShardError, StateError
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.state.partitioner import (
    _sub_bucket_for_key,
    check_reconstruction_set,
    merge_shard_pair,
    merge_shards,
    partition_snapshot,
    partition_synthetic,
    replicate,
    shard_index_for_key,
    split_shard,
)
from repro.state.placement import HashPlacement, PlacedShard, migrate_replica
from repro.state.shard import Shard
from repro.state.store import StateSnapshot
from repro.state.version import StateVersion

V1 = StateVersion(0.0, 1)


def materialized(num_shards=4, keys=200):
    snapshot = StateSnapshot("app/state", {f"k{i}": i for i in range(keys)}, V1)
    return snapshot, partition_snapshot(snapshot, num_shards)


class TestSplit:
    def test_split_grows_partition_by_one(self):
        _, shards = materialized(4)
        out = split_shard(shards, 1)
        assert len(out) == 5
        assert check_reconstruction_set(out) == V1
        assert [s.index for s in out] == [0, 1, 2, 3, 4]
        assert all(s.num_shards == 5 for s in out)

    def test_merged_snapshot_is_preserved(self):
        snapshot, shards = materialized(4)
        for index in range(4):
            out = split_shard(shards, index)
            assert dict(merge_shards(out).items()) == dict(snapshot.items())

    def test_halves_follow_the_next_hash_bit(self):
        _, shards = materialized(4)
        hot = shards[2]
        out = split_shard(shards, 2)
        lower, upper = out[2], out[3]
        for key in hot.entries:
            half = _sub_bucket_for_key(key, 4)
            assert key in (lower, upper)[half].entries

    def test_untouched_shards_keep_contents(self):
        _, shards = materialized(4)
        out = split_shard(shards, 1)
        assert out[0].entries == shards[0].entries
        assert out[3].entries == shards[2].entries  # shifted up by one
        assert out[4].entries == shards[3].entries

    def test_synthetic_split_conserves_bytes(self):
        shards = partition_synthetic("app/state", 1001, 4, V1)
        out = split_shard(shards, 0)
        assert sum(s.size_bytes for s in out) == 1001
        assert check_reconstruction_set(out) == V1

    def test_index_out_of_range(self):
        _, shards = materialized(4)
        with pytest.raises(ShardError):
            split_shard(shards, 4)

    def test_rejects_chain_link_shards(self):
        _, shards = materialized(4)
        shards[0].chain_link = 1
        with pytest.raises(ShardError, match="base partition"):
            split_shard(shards, 0)

    def test_keys_stay_stable_across_save_rounds(self):
        # The sub-bucket derives from the digest quotient, so repeated
        # splits of the same key set are deterministic.
        _, shards = materialized(4)
        first = {s.index: set(s.entries) for s in split_shard(shards, 1)}
        second = {s.index: set(s.entries) for s in split_shard(shards, 1)}
        assert first == second


class TestMergePair:
    def test_merge_shrinks_partition_by_one(self):
        snapshot, shards = materialized(5)
        out = merge_shard_pair(shards, 1, 3)
        assert len(out) == 4
        assert check_reconstruction_set(out) == V1
        assert dict(merge_shards(out).items()) == dict(snapshot.items())

    def test_pair_unions_into_the_lower_index(self):
        _, shards = materialized(5)
        out = merge_shard_pair(shards, 3, 1)  # order must not matter
        assert set(out[1].entries) == set(shards[1].entries) | set(shards[3].entries)
        assert out[3].entries == shards[4].entries  # shifted down past the gap

    def test_synthetic_merge_conserves_bytes(self):
        shards = partition_synthetic("app/state", 999, 4, V1)
        out = merge_shard_pair(shards, 0, 2)
        assert sum(s.size_bytes for s in out) == 999

    def test_merge_with_itself_rejected(self):
        _, shards = materialized(4)
        with pytest.raises(ShardError):
            merge_shard_pair(shards, 2, 2)

    def test_out_of_range_rejected(self):
        _, shards = materialized(4)
        with pytest.raises(ShardError):
            merge_shard_pair(shards, 0, 4)

    def test_mixed_synthetic_rejected(self):
        _, shards = materialized(4)
        hybrid = list(shards)
        hybrid[1] = Shard.synthetic_shard(
            "app/state", 1, 4, V1, shards[1].size_bytes
        )
        with pytest.raises(ShardError, match="synthetic"):
            merge_shard_pair(hybrid, 0, 1)

    def test_split_then_merge_round_trips(self):
        snapshot, shards = materialized(4)
        widened = split_shard(shards, 2)
        narrowed = merge_shard_pair(widened, 2, 3)
        assert len(narrowed) == 4
        assert dict(merge_shards(narrowed).items()) == dict(snapshot.items())


def place(shards, replicas=2, seed=0):
    import random

    from repro.dht.overlay import Overlay

    sim = Simulator()
    network = Network(sim)
    overlay = Overlay(sim, network, rng=random.Random(seed))
    overlay.build(16, host_factory=lambda n: network.add_host(n))
    plan = HashPlacement().place(
        overlay.nodes[0], replicate(shards, replicas), overlay
    )
    plan.store_all()
    return sim, network, overlay, plan


class TestPlacementUnderLoss:
    def test_providers_exclude_lost_replicas(self):
        _, shards = materialized(4)
        _, _, overlay, plan = place(shards)
        victim = plan.providers_for(0)[0]
        overlay.fail_node(victim.node)
        survivors = plan.providers_for(0)
        assert len(survivors) == 1
        assert all(p.node.alive for p in survivors)
        assert victim.node.node_id not in {p.node.node_id for p in survivors}

    def test_available_shards_survive_partial_loss(self):
        _, shards = materialized(4)
        _, _, overlay, plan = place(shards)
        overlay.fail_node(plan.providers_for(2)[0].node)
        available = plan.available_shards()
        assert sorted(s.index for s in available) == [0, 1, 2, 3]
        assert check_reconstruction_set(available) == V1

    def test_total_loss_drops_the_index(self):
        _, shards = materialized(4)
        _, _, overlay, plan = place(shards)
        for placed in list(plan.for_shard(1)):
            placed.node.drop_shard(placed.replica.key)
        assert plan.providers_for(1) == []
        assert sorted(s.index for s in plan.available_shards()) == [0, 2, 3]

    def test_post_split_placement_remaps_indexes(self):
        snapshot, shards = materialized(4)
        out = split_shard(shards, 1)
        _, _, _, plan = place(out)
        assert plan.shard_indexes() == [0, 1, 2, 3, 4]
        assert all(len(plan.providers_for(i)) == 2 for i in range(5))
        rebuilt = merge_shards(plan.available_shards())
        assert dict(rebuilt.items()) == dict(snapshot.items())


class TestMigrateReplica:
    def test_migrate_moves_one_replica(self):
        _, shards = materialized(4)
        sim, network, overlay, plan = place(shards)
        placed = plan.providers_for(0)[0]
        source = placed.node
        held = {p.node.node_id for p in plan.for_shard(0)}
        target = next(
            n
            for n in overlay.alive_nodes()
            if n.node_id not in held and n.node_id != plan.owner.node_id
        )
        done = []
        migrate_replica(
            network, plan, 0, source, target, on_done=done.append
        )
        sim.run_until_idle()
        assert len(done) == 1
        assert done[0].node is target
        assert source.get_shard(placed.replica.key) is None
        assert target.get_shard(placed.replica.key) is not None
        providers = {p.node.node_id for p in plan.providers_for(0)}
        assert target.node_id in providers and source.node_id not in providers
        assert len(providers) == 2  # replication factor preserved

    def test_migrate_preserves_checksums(self):
        snapshot, shards = materialized(4)
        sim, network, overlay, plan = place(shards)
        placed = plan.providers_for(3)[0]
        held = {p.node.node_id for p in plan.for_shard(3)}
        target = next(
            n
            for n in overlay.alive_nodes()
            if n.node_id not in held and n.node_id != plan.owner.node_id
        )
        migrate_replica(network, plan, 3, placed.node, target)
        sim.run_until_idle()
        assert all(s.verify() for s in plan.available_shards())
        assert dict(merge_shards(plan.available_shards()).items()) == dict(
            snapshot.items()
        )

    def test_migrate_rejects_owner_and_duplicates(self):
        _, shards = materialized(4)
        sim, network, overlay, plan = place(shards)
        placed = plan.providers_for(0)[0]
        with pytest.raises(StateError, match="onto its owner"):
            migrate_replica(network, plan, 0, placed.node, plan.owner)
        other = plan.providers_for(0)[1]
        with pytest.raises(StateError, match="already holds"):
            migrate_replica(network, plan, 0, placed.node, other.node)

    def test_migrate_requires_a_live_replica(self):
        _, shards = materialized(4)
        sim, network, overlay, plan = place(shards)
        stranger = plan.owner  # owner never holds replicas
        target = overlay.alive_nodes()[-1]
        with pytest.raises(StateError, match="no live replica"):
            migrate_replica(network, plan, 0, stranger, target)
