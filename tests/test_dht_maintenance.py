"""Unit tests for overlay maintenance traffic accounting (Fig. 12c)."""

import random

import pytest

from repro.dht.maintenance import (
    MaintenanceConfig,
    measure_maintenance,
    run_maintenance_round,
)
from repro.dht.overlay import Overlay
from repro.sim.kernel import Simulator
from repro.sim.network import Network


def build_overlay(count, seed=0):
    sim = Simulator()
    net = Network(sim)
    overlay = Overlay(sim, net, rng=random.Random(seed))
    overlay.build(count)
    return overlay


class TestConfig:
    def test_invalid_periods(self):
        with pytest.raises(ValueError):
            MaintenanceConfig(leafset_period=0)
        with pytest.raises(ValueError):
            MaintenanceConfig(routing_period=-1)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            MaintenanceConfig(ping_bytes=-1)


class TestRounds:
    def test_round_returns_bytes(self):
        overlay = build_overlay(30)
        total = run_maintenance_round(overlay, MaintenanceConfig())
        assert total > 0
        assert overlay.network.total_control_bytes == total

    def test_leafset_only_round_smaller(self):
        overlay = build_overlay(30)
        with_routing = run_maintenance_round(overlay, MaintenanceConfig(), 0, True)
        overlay2 = build_overlay(30)
        without = run_maintenance_round(overlay2, MaintenanceConfig(), 0, False)
        assert with_routing >= without

    def test_dead_nodes_not_pinged(self):
        overlay = build_overlay(30)
        for victim in overlay.nodes[:10]:
            overlay.fail_node(victim)
        overlay.network.total_control_bytes = 0.0
        for node in overlay.nodes:
            node.host.control_bytes_sent = 0.0
        run_maintenance_round(overlay, MaintenanceConfig())
        dead = [n for n in overlay.nodes if not n.alive]
        assert all(n.host.control_bytes_sent == 0 for n in dead)


class TestMeasurement:
    def test_reports_rate(self):
        overlay = build_overlay(40)
        report = measure_maintenance(overlay, MaintenanceConfig(), duration=300.0)
        assert report["nodes"] == 40
        assert report["bytes_per_node_per_second"] > 0

    def test_per_node_rate_grows_slowly(self):
        """The Fig. 12c property: bytes/node grows sub-linearly (about
        linearly in log N) while the overlay grows exponentially."""
        small = measure_maintenance(build_overlay(20), MaintenanceConfig(), 300.0)
        large = measure_maintenance(build_overlay(320), MaintenanceConfig(), 300.0)
        ratio = (
            large["bytes_per_node_per_second"] / small["bytes_per_node_per_second"]
        )
        # 16x more nodes must cost far less than 16x per-node traffic.
        assert 1.0 <= ratio < 2.0

    def test_zero_duration_rejected(self):
        overlay = build_overlay(10)
        with pytest.raises(ValueError):
            measure_maintenance(overlay, MaintenanceConfig(), duration=0)
