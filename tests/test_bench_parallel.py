"""The multiprocess sweep runner: byte-identical output vs the in-process path.

The determinism contract of :mod:`repro.bench.parallel` says ``--jobs N``
changes wall-clock only: reports, rows, baseline keys, and observability
artifacts must come out byte-identical to the serial sweep. These tests
run real spawn workers (jobs=2), so they also prove cells re-derive their
randomness from the cell key alone.
"""

import json

from repro.bench import experiments as exp
from repro.bench.parallel import run_campaign_parallel
from repro.bench.reporting import write_trace_artifact
from repro.chaos.campaign import run_campaign
from repro.obs import registry, tracer


class TestTracerExportInject:
    def test_roundtrip_renumbers_and_freezes_clock(self):
        tracer.clear_collected()
        tracer.enable_tracing(True)
        try:
            cell_tracer = tracer.default_tracer("cell")
            cell_tracer.bind_clock(lambda: 5.0)
            cell_tracer.start("work", category="x", bytes=7.0)  # stays open
            cell_tracer.instant("tick", at=1.0)
            payloads = tracer.export_collected()
            assert [p["name"] for p in payloads] == ["cell"]  # suffix stripped
            tracer.clear_collected()
            rebuilt = tracer.inject_collected(payloads[0])
            assert rebuilt.name == "cell-0"  # renumbered on adoption
            assert [s.name for s in rebuilt.spans] == ["work", "tick"]
            assert rebuilt.spans[0].attrs == {"bytes": 7.0}
            # The open span keeps clamping to the exported clock instant.
            assert rebuilt.spans[0].effective_end == 5.0
            assert rebuilt.spans[1].end == 1.0
            assert tracer.collected_tracers() == [rebuilt]
        finally:
            tracer.enable_tracing(False)
            tracer.clear_collected()

    def test_export_start_scopes_to_new_cells(self):
        tracer.clear_collected()
        tracer.enable_tracing(True)
        try:
            tracer.default_tracer("first")
            start = len(tracer.collected_tracers())
            tracer.default_tracer("second")
            payloads = tracer.export_collected(start)
            assert [p["name"] for p in payloads] == ["second"]
            tracer.drop_collected(start)
            assert [t.name for t in tracer.collected_tracers()] == ["first-0"]
        finally:
            tracer.enable_tracing(False)
            tracer.clear_collected()


class TestRegistryExportInject:
    def test_roundtrip_renumbers(self):
        registry.clear_collected_registries()
        registry.enable_metrics_collection(True)
        try:
            cell = registry.default_registry("cell")
            cell.counter("net.bytes").add(3.0)
            payloads = registry.export_collected_registries()
            assert [p["name"] for p in payloads] == ["cell"]
            registry.clear_collected_registries()
            registry.inject_registry_dump(payloads[0])
            dumps = [r.dump() for r in registry.collected_registries()]
            assert dumps[0]["name"] == "cell-0"
            assert dumps[0]["counters"]["net.bytes"]["total"] == 3.0
        finally:
            registry.enable_metrics_collection(False)
            registry.clear_collected_registries()


class TestParallelCampaign:
    def test_smoke_report_byte_identical_to_serial(self):
        serial = run_campaign("smoke").to_json()
        parallel = run_campaign_parallel("smoke", jobs=2).to_json()
        assert parallel == serial

    def test_observability_artifacts_byte_identical(self, tmp_path):
        def run(runner, tag):
            tracer.clear_collected()
            tracer.enable_tracing(True)
            registry.clear_collected_registries()
            registry.enable_metrics_collection(True)
            try:
                report = runner()
                trace_path = tmp_path / f"trace-{tag}.json"
                write_trace_artifact(str(trace_path), chrome=True)
                metrics = json.dumps(
                    {
                        "registries": [
                            r.dump() for r in registry.collected_registries()
                        ]
                    },
                    sort_keys=True,
                )
                names = [t.name for t in tracer.collected_tracers()]
            finally:
                tracer.enable_tracing(False)
                tracer.clear_collected()
                registry.enable_metrics_collection(False)
                registry.clear_collected_registries()
            return report.to_json(), trace_path.read_text(), metrics, names

        serial = run(lambda: run_campaign("smoke"), "serial")
        parallel = run(lambda: run_campaign_parallel("smoke", jobs=2), "par")
        assert parallel == serial


class TestParallelScale:
    @staticmethod
    def _simulated(result):
        """Everything deterministic: rows and keys minus wall-clock noise."""
        keys = {
            k: v
            for k, v in result.extra["baseline_metrics"].items()
            if not k.endswith(("/wall_s", "/events_per_s"))
        }
        rows = [
            (row["nodes"], row["mechanism"], row["apps"], row["makespan_s"])
            for row in result.rows
        ]
        return keys, rows

    def test_scale_cells_match_in_process_sweep(self):
        serial = exp.scale_overlay(node_counts=(64, 128), state_mb=1, jobs=1)
        parallel = exp.scale_overlay(node_counts=(64, 128), state_mb=1, jobs=2)
        assert self._simulated(parallel) == self._simulated(serial)
