"""Unit tests for the experiment harness and reporting."""

import pytest

from repro.bench.harness import (
    ExperimentResult,
    build_scenario,
    default_shard_count,
    saved_state,
    timed_recovery,
)
from repro.bench.reporting import format_result, render_markdown
from repro.errors import BenchmarkError
from repro.recovery.star import StarRecovery
from repro.util.sizes import MB


class TestExperimentResult:
    def make(self):
        return ExperimentResult("exp", "desc", columns=["a", "b"])

    def test_add_row_and_column(self):
        result = self.make()
        result.add_row(a=1, b=2)
        result.add_row(a=3, b=4)
        assert result.column("a") == [1, 3]

    def test_missing_column_rejected(self):
        result = self.make()
        with pytest.raises(BenchmarkError):
            result.add_row(a=1)

    def test_unknown_column_rejected(self):
        result = self.make()
        with pytest.raises(BenchmarkError):
            result.column("z")

    def test_series_filter(self):
        result = self.make()
        result.add_row(a="x", b=1)
        result.add_row(a="y", b=2)
        result.add_row(a="x", b=3)
        assert result.series("a", "x", "b") == [1, 3]


class TestReporting:
    def test_text_table_contains_data(self):
        result = ExperimentResult("e", "d", columns=["size", "time"])
        result.add_row(size=8, time=1.5)
        text = format_result(result)
        assert "size" in text and "1.50" in text and "== e:" in text

    def test_markdown_table(self):
        result = ExperimentResult("e", "d", columns=["x"], notes="scaled down")
        result.add_row(x=True)
        md = render_markdown(result)
        assert md.startswith("| x |")
        assert "| yes |" in md
        assert "scaled down" in md

    def test_large_numbers_formatted(self):
        result = ExperimentResult("e", "d", columns=["x"])
        result.add_row(x=1234567.0)
        assert "1,234,567" in format_result(result)


class TestScenario:
    def test_unconstrained_links(self):
        scenario = build_scenario(num_nodes=16)
        assert not scenario.constrained
        assert scenario.overlay.nodes[0].host.up_bw == float("inf")

    def test_constrained_links(self):
        scenario = build_scenario(num_nodes=16, uplink_mbit=100, downlink_mbit=100)
        assert scenario.constrained
        assert scenario.overlay.nodes[0].host.up_bw == pytest.approx(12.5e6)

    def test_storage_registered(self):
        scenario = build_scenario(num_nodes=16)
        assert "remote-storage" in scenario.network.hosts

    def test_default_shard_count_scaling(self):
        assert default_shard_count(8 * MB) == 4
        assert default_shard_count(128 * MB) == 16

    def test_saved_state_and_timed_recovery(self):
        scenario = build_scenario(num_nodes=32, seed=1)
        registered, save_result = saved_state(scenario, "a/s", 8 * MB)
        assert registered.plan is not None
        assert save_result.duration > 0
        result = timed_recovery(scenario, StarRecovery(), "a/s")
        assert result.duration > 0
        assert not registered.owner.alive
