"""End-to-end tests for the auto-remediation controller (repro.control)."""

import pytest

from repro import SR3
from repro.bench.harness import build_scenario, saved_delta, saved_state
from repro.chaos.campaign import run_scenario
from repro.chaos.scenario import SCENARIOS
from repro.control import (
    ControlConfig,
    Controller,
    ControlPlane,
    PolicyRule,
    PolicyTable,
)
from repro.control.actions import ACTIONS, Action, build_action, register_action
from repro.control.events import ControlEvent, EventLog, watch_detector
from repro.errors import ConfigError, RecoveryError
from repro.state.chain import CompactionPolicy
from repro.state.placement import PlacedShard
from repro.util.sizes import MB


def controller_for(scenario, **kwargs):
    return Controller(ControlPlane.from_deployment(scenario), **kwargs)


class TestEvents:
    def test_drain_cursor(self):
        log = EventLog()
        log.emit(ControlEvent(kind="node-failed", at=1.0, node="a"))
        log.emit(ControlEvent(kind="node-failed", at=2.0, node="b"))
        assert [e.node for e in log.drain()] == ["a", "b"]
        assert log.drain() == []
        log.emit(ControlEvent(kind="node-degraded", at=3.0, node="c"))
        assert [e.node for e in log.drain()] == ["c"]
        assert len(log) == 3
        assert [e.node for e in log.history()] == ["a", "b", "c"]

    def test_watch_detector_chains_and_dedupes(self):
        class Thing:
            def __init__(self, name):
                self.name = name

        calls = []
        detector = Thing("det")
        detector.on_failure = lambda watcher, member, at: calls.append(member.name)
        log = EventLog()
        watch_detector(detector, log)
        watcher, member = Thing("node-1"), Thing("node-2")
        detector.on_failure(watcher, member, 5.0)
        detector.on_failure(Thing("node-3"), member, 6.0)  # duplicate declaration
        assert calls == ["node-2", "node-2"]  # previous callback still runs
        events = log.drain()
        assert len(events) == 1
        assert events[0].kind == "node-failed"
        assert events[0].node == "node-2"
        assert events[0].at == 5.0
        assert dict(events[0].attrs) == {"watcher": "node-1"}


class TestOwnerLost:
    def test_recovers_dead_owner(self):
        sc = build_scenario(num_nodes=32, seed=3)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        old_owner = registered.owner
        sc.overlay.fail_node(old_owner)
        ctl = controller_for(sc)
        records = ctl.run()
        recoveries = [r for r in records if r.action == "recover"]
        assert len(recoveries) == 1
        record = recoveries[0]
        assert record.verified
        assert record.mttr_s is not None and record.mttr_s > 0
        assert registered.owner.alive
        assert registered.owner is not old_owner
        assert all(r.verified for r in records)
        assert ctl.diagnose() == []

    def test_begin_owner_loss_and_sweep(self):
        sc = build_scenario(num_nodes=32, seed=4)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        sc.overlay.fail_node(registered.owner)
        ctl = controller_for(sc)
        handle = ctl.begin_owner_loss("app/state", mechanism="star")
        assert ctl.records and not ctl.records[0].verified
        sc.sim.run_until_idle()
        assert handle.result.mechanism == "star"
        ctl.sweep()
        assert ctl.records[0].verified
        assert ctl.records[0].mttr_s > 0
        assert registered.owner.alive

    def test_begin_owner_loss_requires_recover_rule(self):
        sc = build_scenario(num_nodes=32, seed=4)
        saved_state(sc, "app/state", 16 * MB)
        empty = controller_for(sc, policy=PolicyTable())
        with pytest.raises(RecoveryError):
            empty.begin_owner_loss("app/state")
        wrong = controller_for(
            sc,
            policy=PolicyTable(
                rules=[PolicyRule(condition="owner-lost", action="rewrite")]
            ),
        )
        with pytest.raises(RecoveryError):
            wrong.begin_owner_loss("app/state")


class TestReplicaThin:
    def test_re_replicates_after_holder_death(self):
        sc = build_scenario(num_nodes=32, seed=5)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        holder = next(
            p.node for p in registered.plan.placements if p.node is not registered.owner
        )
        sc.overlay.fail_node(holder)
        ctl = controller_for(sc)
        records = ctl.run()
        thin = [r for r in records if r.diagnosis.condition == "replica-thin"]
        assert len(thin) == 1
        assert thin[0].verified
        assert thin[0].action == "re-replicate"
        for index in registered.plan.shard_indexes():
            assert (
                len(registered.plan.providers_for(index)) >= registered.num_replicas
            )
        assert ctl.diagnose() == []

    def test_re_replicate_is_idempotent(self):
        sc = build_scenario(num_nodes=32, seed=5)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        holder = next(
            p.node for p in registered.plan.placements if p.node is not registered.owner
        )
        sc.overlay.fail_node(holder)
        ctl = controller_for(sc)
        diagnosis = ctl.diagnose()[0]
        action = build_action("re-replicate")
        world = ctl.world
        first = action.execute(world, diagnosis)
        assert first.ok and first.changed
        again = action.execute(world, diagnosis)
        assert again.ok and not again.changed


class TestChainTooLong:
    def test_compacts_over_long_chain(self):
        sc = build_scenario(num_nodes=32, seed=6)
        registered, _ = saved_state(sc, "app/state", 32 * MB)
        for _ in range(3):
            saved_delta(sc, "app/state", 2 * MB)
        assert registered.chain.length == 4
        # The manager self-compacts during saves, so a too-long chain only
        # appears when the policy tightens under an existing chain.
        sc.manager.compaction = CompactionPolicy(max_chain_len=2, max_delta_ratio=0.5)
        ctl = controller_for(sc)
        records = ctl.run()
        compactions = [r for r in records if r.action == "compact-chain"]
        assert len(compactions) == 1
        assert compactions[0].verified
        assert registered.chain.length == 1
        assert ctl.diagnose() == []

    def test_compact_noop_on_flat_chain(self):
        sc = build_scenario(num_nodes=32, seed=6)
        saved_state(sc, "app/state", 16 * MB)
        ctl = controller_for(sc)
        diagnosis = ctl.diagnose()
        assert diagnosis == []  # healthy chain, nothing to do
        outcome = build_action("compact-chain").execute(
            ctl.world,
            # Hand-built diagnosis: the action must refuse to churn a
            # chain that already satisfies the policy.
            type(
                "D", (), {"state": "app/state", "node": None, "subject": "app/state"}
            )(),
        )
        assert outcome.ok and not outcome.changed


class TestFlakyNode:
    def build_flaky(self, seed=7):
        sc = build_scenario(num_nodes=24, seed=seed, uplink_mbit=200, downlink_mbit=200)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        flaky = next(
            p.node for p in registered.plan.placements if p.node is not registered.owner
        )
        host = flaky.host
        sc.network.set_host_bandwidth(
            host, host.nominal_up_bw * 0.2, host.nominal_down_bw * 0.2
        )
        return sc, registered, flaky

    def test_degraded_host_emits_event_and_drains(self):
        sc, registered, flaky = self.build_flaky()
        ctl = controller_for(sc)
        events = ctl.observe()
        assert any(
            e.kind == "node-degraded" and e.node == flaky.host.name for e in events
        )
        assert ctl.observe() == []  # seen hosts do not re-flag
        records = ctl.run()
        drained = [r for r in records if r.diagnosis.condition == "flaky-node"]
        assert len(drained) == 1
        assert drained[0].verified
        assert drained[0].action == "rebalance"
        assert flaky.stored_shard_count() == 0
        assert ctl.diagnose() == []

    def test_retry_then_escalate_on_persistent_condition(self):
        sc, registered, flaky = self.build_flaky(seed=8)

        @register_action
        class NoopFix(Action):
            name = "noop-fix"

            def execute(self, world, diagnosis, parent_span=None):
                return self._ok(changed=False)

        try:
            policy = PolicyTable(
                rules=[
                    PolicyRule(
                        condition="flaky-node",
                        action="noop-fix",
                        max_retries=1,
                        escalation="rebalance",
                    )
                ]
            )
            ctl = controller_for(sc, policy=policy)
            records = ctl.run()
            assert len(records) == 1
            record = records[0]
            # Two failed noop attempts, then the escalation lands.
            assert record.attempts == 3
            assert record.escalated
            assert record.verified
            assert sum("persists" in v for v in record.violations) == 2
            assert flaky.stored_shard_count() == 0
        finally:
            ACTIONS.pop("noop-fix")

    def test_unresolvable_condition_parks(self):
        sc, registered, flaky = self.build_flaky(seed=9)

        @register_action
        class NoopFix(Action):
            name = "noop-fix"

            def execute(self, world, diagnosis, parent_span=None):
                return self._ok(changed=False)

        try:
            policy = PolicyTable(
                rules=[
                    PolicyRule(
                        condition="flaky-node", action="noop-fix", max_retries=0
                    )
                ]
            )
            ctl = controller_for(sc, policy=policy)
            records = ctl.run()
            assert len(records) == 1
            assert not records[0].verified
            assert ctl.run() == []  # parked: the loop terminates
            summary = ctl.report()["summary"]
            assert summary["unresolved"] == 1
            assert summary["verified"] == 0
        finally:
            ACTIONS.pop("noop-fix")


class TestHotShard:
    def test_rebalances_hot_node(self):
        sc = build_scenario(num_nodes=32, seed=10)
        registered, _ = saved_state(sc, "app/state", 32 * MB, num_shards=8)
        plan = registered.plan
        placed_nodes = {p.node.name for p in plan.placements}
        hot = next(
            n
            for n in sc.overlay.nodes
            if n.alive and n is not registered.owner and n.name not in placed_nodes
        )
        # Pile every second replica onto one node.
        for placed in list(plan.placements):
            if placed.replica.replica_index != 1:
                continue
            hot.store_shard(placed.replica.key, placed.replica)
            placed.node.drop_shard(placed.replica.key)
            plan.placements.remove(placed)
            plan.placements.append(PlacedShard(placed.replica, hot))
        ctl = controller_for(sc, config=ControlConfig(hot_shard_factor=2.0))
        diagnoses = ctl.diagnose()
        assert any(
            d.condition == "hot-shard" and d.node == hot.name for d in diagnoses
        )
        records = ctl.run()
        hot_records = [r for r in records if r.diagnosis.condition == "hot-shard"]
        assert len(hot_records) == 1
        assert hot_records[0].verified
        assert hot_records[0].action == "rebalance"
        assert ctl.diagnose() == []
        # Replication is intact after the moves.
        for index in plan.shard_indexes():
            assert len(plan.providers_for(index)) >= registered.num_replicas


class TestActionRegistry:
    def test_build_action_unknown(self):
        with pytest.raises(ConfigError):
            build_action("no-such-action")

    def test_catalog(self):
        for name in ("recover", "re-replicate", "rewrite", "compact-chain",
                     "rebalance", "evict-node"):
            assert name in ACTIONS


class TestReport:
    def test_report_shape(self):
        sc = build_scenario(num_nodes=32, seed=11)
        registered, _ = saved_state(sc, "app/state", 16 * MB)
        sc.overlay.fail_node(registered.owner)
        ctl = controller_for(sc)
        ctl.run()
        report = ctl.report()
        assert report["format"] == "sr3-control-1"
        summary = report["summary"]
        assert summary["remediations"] == len(report["records"])
        assert summary["verified"] >= 1
        assert summary["max_mttr_s"] >= summary["mean_mttr_s"] > 0
        for record in report["records"]:
            assert record["diagnosis"]["condition"]
            assert record["outcomes"]


class TestSR3Facade:
    def test_attach_detach_lifecycle(self):
        sr3 = SR3.create(num_nodes=32, seed=7)
        with pytest.raises(RecoveryError):
            sr3.remediate()
        ctl = sr3.attach_controller()
        assert sr3.controller is ctl
        with pytest.raises(RecoveryError):
            sr3.attach_controller()
        assert sr3.remediate() == []  # healthy world: nothing to do
        assert sr3.detach_controller() is ctl
        assert sr3.controller is None

    def test_remediates_protected_state(self):
        sr3 = SR3.create(num_nodes=32, seed=7)
        owner = sr3.overlay.nodes[0]
        pieces = sr3.state_split(32 * MB, "app/state", num_shards=4)
        sr3.save(owner, pieces)
        sr3.attach_controller()
        sr3.overlay.fail_node(owner)
        records = sr3.remediate()
        recoveries = [r for r in records if r.action == "recover"]
        assert len(recoveries) == 1 and recoveries[0].verified
        assert sr3.manager.states["app/state"].owner.alive


class TestControllerCampaign:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_catalog_remediates_under_star(self, name):
        outcome = run_scenario(SCENARIOS[name], "star", controller=True)
        assert not outcome.errors
        assert not outcome.hard_violations
        assert outcome.remediations >= 1
        assert outcome.remediation_mttr_s > 0

    def test_remediate_experiment_is_deterministic(self):
        from repro.bench.experiments import remediate_controller

        names = ("crash-wave", "stragglers")
        first = remediate_controller(scenario_names=names)
        second = remediate_controller(scenario_names=names)

        def gated(result):
            # wall_s keys are host wall-clock: informational, not gated.
            return {
                k: v
                for k, v in result.extra["baseline_metrics"].items()
                if not k.endswith("/wall_s")
            }

        def simulated(rows):
            return [{k: v for k, v in row.items() if k != "wall_s"} for row in rows]

        assert gated(first) == gated(second)
        assert simulated(first.rows) == simulated(second.rows)
        for name in names:
            assert f"remediate/{name}/mttr_s" in first.extra["baseline_metrics"]
