"""Tests for the session-analytics workload (session windows + state)."""

import random

import pytest

from repro.dht.overlay import Overlay
from repro.errors import WorkloadError
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import RecoveryContext
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.streaming.backend import SR3StateBackend
from repro.streaming.cluster import LocalCluster
from repro.streaming.component import OutputCollector, TaskContext
from repro.streaming.tuples import StreamTuple
from repro.workloads.sessions import (
    SessionAnalyticsBolt,
    build_session_analytics_topology,
)


def prepared_bolt(gap=10.0):
    bolt = SessionAnalyticsBolt(gap=gap)
    bolt.prepare(TaskContext("sessions", 0, 1))
    return bolt


def send(bolt, user, ts, event="click"):
    collector = OutputCollector("sessions", bolt.declare_output_fields())
    bolt.execute(
        StreamTuple(
            (event, user, "ip", "product", ts),
            ("event", "user", "ip", "product", "ts"),
        ),
        collector,
    )
    return collector.drain()


class TestSessionBolt:
    def test_gap_closes_session(self):
        bolt = prepared_bolt(gap=10.0)
        assert send(bolt, "u1", 0.0) == []
        assert send(bolt, "u1", 5.0) == []
        out = send(bolt, "u1", 30.0)  # gap exceeded -> previous session closes
        assert len(out) == 1
        assert out[0]["session_events"] == 2
        assert out[0]["session_span"] == 5.0
        assert bolt.stats_for("u1") == (1, 2, 2)

    def test_sessions_are_per_user(self):
        bolt = prepared_bolt(gap=10.0)
        send(bolt, "u1", 0.0)
        assert send(bolt, "u2", 100.0) == []  # different user: no closure

    def test_finish_flushes_open_sessions(self):
        bolt = prepared_bolt(gap=10.0)
        send(bolt, "u1", 0.0)
        send(bolt, "u2", 3.0)
        collector = OutputCollector("sessions", bolt.declare_output_fields())
        bolt.finish(collector)
        flushed = collector.drain()
        assert {t["user"] for t in flushed} == {"u1", "u2"}
        assert bolt.stats_for("u1")[0] == 1

    def test_longest_session_tracked(self):
        bolt = prepared_bolt(gap=10.0)
        for ts in (0.0, 1.0, 2.0):
            send(bolt, "u1", ts)
        send(bolt, "u1", 50.0)  # closes 3-event session
        send(bolt, "u1", 100.0)  # closes 1-event session
        assert bolt.stats_for("u1") == (2, 4, 3)

    def test_invalid_gap(self):
        with pytest.raises(WorkloadError):
            SessionAnalyticsBolt(gap=0)


class TestSessionTopology:
    def test_end_to_end_sessions_close(self):
        cluster = LocalCluster(
            build_session_analytics_topology(num_events=3000, seed=2, gap=50.0)
        )
        cluster.run()
        cluster.flush()
        sessions = cluster.outputs["sessions"]
        assert sessions
        assert all(t["session_events"] >= 1 for t in sessions)

    def test_total_events_conserved(self):
        cluster = LocalCluster(
            build_session_analytics_topology(num_events=1000, seed=3, gap=50.0)
        )
        cluster.run()
        cluster.flush()
        total = sum(t["session_events"] for t in cluster.outputs["sessions"])
        assert total == 1000

    def test_state_survives_sr3_recovery(self):
        sim = Simulator()
        net = Network(sim)
        overlay = Overlay(sim, net, rng=random.Random(8))
        overlay.build(64)
        backend = SR3StateBackend(
            RecoveryManager(RecoveryContext(sim, net, overlay)), num_shards=2
        )
        cluster = LocalCluster(
            build_session_analytics_topology(num_events=2000, seed=4, parallelism=1),
            backend=backend,
        )
        cluster.protect_stateful_tasks()
        cluster.run(max_emissions=1200)
        cluster.checkpoint()
        before = dict(cluster.task("sessions").state.items())
        cluster.kill_task("sessions")
        cluster.recover_task("sessions")
        assert dict(cluster.task("sessions").state.items()) == before
