"""The self-contained HTML dashboard renderer."""

import re

from repro.obs.anomaly import AnomalyDetector
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.slo import SLO, BurnWindow, SLOEngine
from repro.obs.timeseries import TelemetryPipeline
from repro.sim import Simulator


def instrumented_pipeline():
    pipe = TelemetryPipeline(Simulator())
    for i in range(16):
        pipe.record("live.backlog", float(i), 10.0 + (0.5 if i % 2 else -0.5))
        pipe.record("live.throughput", float(i), 100.0, kind="rate")
    pipe.record("live.backlog", 16.0, 500.0)  # excursion: alert + anomaly
    return pipe


def full_stack():
    pipe = instrumented_pipeline()
    engine = SLOEngine(pipe)
    engine.add(
        SLO(
            name="backlog-ok",
            series="live.backlog",
            objective="le",
            threshold=200.0,
            budget=0.1,
            windows=(BurnWindow(long_s=1.0, short_s=0.5, burn_rate=4.0),),
        )
    )
    engine.evaluate(16.0)
    anomalies = AnomalyDetector(pipe, series=("live.backlog",), window=16, min_points=8)
    anomalies.scan(16.0)
    return pipe, engine, anomalies


class TestSelfContainment:
    def test_no_external_references_or_scripts(self):
        pipe, engine, anomalies = full_stack()
        html = render_dashboard(pipe, slo_engine=engine, anomalies=anomalies)
        assert "<script" not in html.lower()
        # Every byte is inline: no attribute fetches anything remote.
        assert re.search(r"\b(src|href)\s*=", html, re.IGNORECASE) is None
        assert "http://" not in html and "https://" not in html

    def test_structure_and_marker(self):
        pipe, engine, anomalies = full_stack()
        html = render_dashboard(
            pipe, slo_engine=engine, anomalies=anomalies, title="unit <cell>"
        )
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</html>")
        assert "sr3-dashboard-1" in html
        assert "unit &lt;cell&gt;" in html  # titles are escaped
        # One sparkline card per series.
        assert html.count("<polyline") == 2
        assert "live.backlog" in html and "live.throughput" in html

    def test_slo_and_timeline_sections(self):
        pipe, engine, anomalies = full_stack()
        assert engine.alerts and anomalies.anomalies  # the excursion registered
        html = render_dashboard(pipe, slo_engine=engine, anomalies=anomalies)
        assert "SLO status" in html
        assert "backlog-ok" in html
        assert "Alert timeline" in html
        assert "burning on live.backlog" in html
        assert "spike on live.backlog" in html

    def test_sections_collapse_when_absent(self):
        html = render_dashboard(instrumented_pipeline())
        assert "SLO status" not in html
        assert "Alert timeline" not in html
        assert "Remediations" not in html
        assert "Series" in html

    def test_empty_series_renders_placeholder(self):
        html = render_dashboard(TelemetryPipeline(Simulator()))
        assert "0 series" in html
        assert "sr3-dashboard-1" in html


class TestDeterminism:
    def test_same_input_same_bytes(self):
        pipe1, engine1, anomalies1 = full_stack()
        pipe2, engine2, anomalies2 = full_stack()
        one = render_dashboard(pipe1, slo_engine=engine1, anomalies=anomalies1)
        two = render_dashboard(pipe2, slo_engine=engine2, anomalies=anomalies2)
        assert one == two

    def test_write_dashboard_round_trips(self, tmp_path):
        pipe, engine, anomalies = full_stack()
        out = tmp_path / "dash.html"
        returned = write_dashboard(str(out), pipe, slo_engine=engine, anomalies=anomalies)
        assert returned == str(out)
        on_disk = out.read_text(encoding="utf-8")
        assert on_disk == render_dashboard(pipe, slo_engine=engine, anomalies=anomalies)
        assert len(on_disk) > 1000
