"""Unit tests for replica placement strategies."""

import random

import pytest

from repro.dht.overlay import Overlay
from repro.errors import StateError
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.state.partitioner import partition_synthetic, replicate
from repro.state.placement import HashPlacement, LeafSetPlacement, PlacementPlan
from repro.state.version import StateVersion

V1 = StateVersion(1.0, 1)


def build_overlay(count, seed=0, leaf_set_size=24):
    sim = Simulator()
    net = Network(sim)
    overlay = Overlay(sim, net, leaf_set_size=leaf_set_size, rng=random.Random(seed))
    overlay.build(count)
    return overlay


def make_replicas(name="app/state", size=1000, shards=4, replicas=2):
    return replicate(partition_synthetic(name, size, shards, V1), replicas)


class TestLeafSetPlacement:
    def test_replicas_of_shard_on_distinct_nodes(self):
        overlay = build_overlay(64)
        plan = LeafSetPlacement().place(overlay.nodes[0], make_replicas(replicas=3), overlay)
        for index in plan.shard_indexes():
            nodes = {p.node.node_id for p in plan.for_shard(index)}
            assert len(nodes) == 3

    def test_never_places_on_owner(self):
        overlay = build_overlay(64)
        owner = overlay.nodes[0]
        plan = LeafSetPlacement().place(owner, make_replicas(), overlay)
        assert all(p.node.node_id != owner.node_id for p in plan.placements)

    def test_targets_are_leaf_set_members(self):
        overlay = build_overlay(64, seed=2)
        owner = overlay.nodes[0]
        plan = LeafSetPlacement().place(owner, make_replicas(), overlay)
        leafs = {n.node_id for n in overlay.leaf_set_of(owner)}
        assert all(p.node.node_id in leafs for p in plan.placements)

    def test_leaf_set_too_small_rejected(self):
        overlay = build_overlay(8, leaf_set_size=4)
        with pytest.raises(StateError):
            LeafSetPlacement().place(
                overlay.nodes[0], make_replicas(replicas=6), overlay
            )

    def test_spreads_over_leaf_set(self):
        overlay = build_overlay(64, seed=3)
        plan = LeafSetPlacement().place(
            overlay.nodes[0], make_replicas(shards=12, replicas=2), overlay
        )
        assert len(plan.nodes()) >= 12


class TestHashPlacement:
    def test_distinct_replica_nodes(self):
        overlay = build_overlay(64, seed=1)
        plan = HashPlacement().place(overlay.nodes[0], make_replicas(replicas=3), overlay)
        for index in plan.shard_indexes():
            nodes = {p.node.node_id for p in plan.for_shard(index)}
            assert len(nodes) == 3

    def test_owner_excluded(self):
        overlay = build_overlay(64, seed=1)
        owner = overlay.nodes[0]
        plan = HashPlacement().place(owner, make_replicas(shards=16), overlay)
        assert all(p.node.node_id != owner.node_id for p in plan.placements)

    def test_no_owner_allowed(self):
        overlay = build_overlay(64, seed=1)
        plan = HashPlacement().place(None, make_replicas(), overlay)
        assert len(plan.placements) == 8

    def test_deterministic(self):
        a = HashPlacement().place(None, make_replicas(), build_overlay(64, seed=5))
        b = HashPlacement().place(None, make_replicas(), build_overlay(64, seed=5))
        assert [p.node.name for p in a.placements] == [
            p.node.name for p in b.placements
        ]

    def test_tiny_overlay_rejected(self):
        overlay = build_overlay(2)
        with pytest.raises(StateError):
            HashPlacement().place(None, make_replicas(replicas=4), overlay)


class TestPlacementPlan:
    def _plan(self):
        overlay = build_overlay(64, seed=7)
        plan = LeafSetPlacement().place(overlay.nodes[0], make_replicas(), overlay)
        return overlay, plan

    def test_store_all_installs_replicas(self):
        _, plan = self._plan()
        plan.store_all()
        for placed in plan.placements:
            assert placed.node.get_shard(placed.replica.key) is placed.replica

    def test_providers_require_stored_data(self):
        _, plan = self._plan()
        assert plan.providers_for(0) == []
        plan.store_all()
        assert len(plan.providers_for(0)) == 2

    def test_providers_exclude_dead_nodes(self):
        overlay, plan = self._plan()
        plan.store_all()
        victim = plan.for_shard(0)[0].node
        victim.fail()
        providers = plan.providers_for(0)
        assert all(p.node.alive for p in providers)
        assert len(providers) == 1

    def test_providers_exclude_dropped_shards(self):
        _, plan = self._plan()
        plan.store_all()
        placed = plan.for_shard(1)[0]
        assert placed.node.drop_shard(placed.replica.key)
        assert len(plan.providers_for(1)) == 1

    def test_available_shards_one_per_index(self):
        _, plan = self._plan()
        plan.store_all()
        shards = plan.available_shards()
        assert sorted(s.index for s in shards) == plan.shard_indexes()

    def test_empty_plan(self):
        plan = PlacementPlan(owner=None)
        assert plan.nodes() == []
        assert plan.shard_indexes() == []
