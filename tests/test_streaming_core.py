"""Unit tests for tuples, components, groupings, and topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TopologyError
from repro.streaming.component import (
    FunctionBolt,
    IteratorSpout,
    OutputCollector,
    TaskContext,
)
from repro.streaming.groupings import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    ShuffleGrouping,
)
from repro.streaming.topology import TopologyBuilder
from repro.streaming.tuples import StreamTuple


class TestStreamTuple:
    def test_field_access(self):
        t = StreamTuple((1, "x"), ("count", "word"))
        assert t["count"] == 1
        assert t["word"] == "x"
        assert t.get("missing", 7) == 7

    def test_unknown_field(self):
        t = StreamTuple((1,), ("a",))
        with pytest.raises(KeyError):
            _ = t["b"]

    def test_mismatched_arity(self):
        with pytest.raises(TopologyError):
            StreamTuple((1, 2), ("a",))

    def test_as_dict_and_equality(self):
        t = StreamTuple((1, 2), ("a", "b"))
        assert t.as_dict() == {"a": 1, "b": 2}
        assert t == StreamTuple((1, 2), ("a", "b"))
        assert t != StreamTuple((1, 3), ("a", "b"))
        assert len({t, StreamTuple((1, 2), ("a", "b"))}) == 1


class TestCollector:
    def test_emit_and_drain(self):
        collector = OutputCollector("src", ("a",))
        collector.emit((1,))
        collector.emit((2,), timestamp=5.0)
        drained = collector.drain()
        assert [t["a"] for t in drained] == [1, 2]
        assert drained[1].timestamp == 5.0
        assert drained[0].source == "src"
        assert collector.drain() == []


class TestHelperComponents:
    def test_iterator_spout_exhausts(self):
        spout = IteratorSpout(iter([(1,), (2,)]), ("v",))
        collector = OutputCollector("s", ("v",))
        assert spout.next_tuple(collector)
        assert spout.next_tuple(collector)
        assert not spout.next_tuple(collector)
        assert [t["v"] for t in collector.drain()] == [1, 2]

    def test_function_bolt_maps(self):
        bolt = FunctionBolt(lambda t: [(t["v"] * 2,)], ("v",))
        collector = OutputCollector("b", ("v",))
        bolt.execute(StreamTuple((3,), ("v",)), collector)
        assert collector.drain()[0]["v"] == 6

    def test_function_bolt_filter_via_empty(self):
        bolt = FunctionBolt(lambda t: [] if t["v"] < 0 else [(t["v"],)], ("v",))
        collector = OutputCollector("b", ("v",))
        bolt.execute(StreamTuple((-1,), ("v",)), collector)
        assert collector.drain() == []

    def test_task_context_bounds(self):
        with pytest.raises(TopologyError):
            TaskContext("c", 2, 2)
        assert TaskContext("c", 1, 2).task_id == "c[1]"


class TestGroupings:
    def test_shuffle_round_robin(self):
        g = ShuffleGrouping()
        t = StreamTuple((1,), ("a",))
        assert [g.choose(t, 3)[0] for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    @given(st.text(min_size=1), st.integers(min_value=1, max_value=16))
    def test_fields_same_key_same_task(self, key, tasks):
        g = FieldsGrouping(["k"])
        t = StreamTuple((key,), ("k",))
        first = g.choose(t, tasks)
        assert g.choose(t, tasks) == first
        assert 0 <= first[0] < tasks

    def test_fields_requires_fields(self):
        with pytest.raises(TopologyError):
            FieldsGrouping([])

    def test_fields_spreads_keys(self):
        g = FieldsGrouping(["k"])
        targets = {
            g.choose(StreamTuple((f"key-{i}",), ("k",)), 8)[0] for i in range(200)
        }
        assert len(targets) >= 6  # nearly all tasks get traffic

    def test_global_always_zero(self):
        g = GlobalGrouping()
        assert g.choose(StreamTuple((1,), ("a",)), 5) == [0]

    def test_all_replicates(self):
        g = AllGrouping()
        assert g.choose(StreamTuple((1,), ("a",)), 4) == [0, 1, 2, 3]


class TestTopologyBuilder:
    def _spout(self):
        return IteratorSpout(iter([]), ("v",))

    def _bolt(self):
        return FunctionBolt(lambda t: [(t["v"],)], ("v",))

    def test_minimal_topology(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", self._spout())
        builder.set_bolt("b", self._bolt(), ["s"])
        topo = builder.build()
        assert topo.order == ["s", "b"]
        assert topo.downstream_of("s")[0].target == "b"
        assert topo.upstream_of("b")[0].source == "s"

    def test_no_spout_rejected(self):
        builder = TopologyBuilder("t")
        with pytest.raises(TopologyError):
            builder.build()

    def test_duplicate_ids_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("x", self._spout())
        with pytest.raises(TopologyError):
            builder.set_bolt("x", self._bolt(), ["x"])

    def test_unknown_upstream_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", self._spout())
        builder.set_bolt("b", self._bolt(), ["ghost"])
        with pytest.raises(TopologyError):
            builder.build()

    def test_bolt_without_upstream_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", self._spout())
        with pytest.raises(TopologyError):
            builder.set_bolt("b", self._bolt(), [])

    def test_cycle_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", self._spout())
        builder.set_bolt("a", self._bolt(), ["s", "b"])
        builder.set_bolt("b", self._bolt(), ["a"])
        with pytest.raises(TopologyError):
            builder.build()

    def test_self_loop_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", self._spout())
        with pytest.raises(TopologyError):
            builder.set_bolt("b", self._bolt(), ["b"]).build()

    def test_diamond_topology_order(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", self._spout())
        builder.set_bolt("l", self._bolt(), ["s"])
        builder.set_bolt("r", self._bolt(), ["s"])
        builder.set_bolt("join", self._bolt(), ["l", "r"])
        topo = builder.build()
        assert topo.order.index("join") > topo.order.index("l")
        assert topo.order.index("join") > topo.order.index("r")

    def test_spout_type_checked(self):
        builder = TopologyBuilder("t")
        with pytest.raises(TopologyError):
            builder.set_spout("s", self._bolt())

    def test_parallelism_validated(self):
        builder = TopologyBuilder("t")
        with pytest.raises(TopologyError):
            builder.set_spout("s", self._spout(), parallelism=0)

    def test_string_upstream_gets_shuffle(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", self._spout())
        builder.set_bolt("b", self._bolt(), ["s"])
        topo = builder.build()
        assert isinstance(topo.edges[0].grouping, ShuffleGrouping)
