"""Incremental checkpointing through the streaming backend.

End-to-end over a real word-count topology: the first save round ships a
full base, later rounds ship only the dirtied keys as delta shards, and a
killed task recovers byte-identical state by replaying its version chain.
"""

import random

from repro.dht.overlay import Overlay
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import RecoveryContext
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.streaming.backend import SR3StateBackend
from repro.streaming.cluster import LocalCluster
from repro.workloads.wordcount import build_wordcount_topology


def wordcount_cluster(seed=0, num_sentences=600):
    sim = Simulator()
    network = Network(sim)
    overlay = Overlay(sim, network, rng=random.Random(seed))
    overlay.build(32)
    manager = RecoveryManager(RecoveryContext(sim, network, overlay))
    backend = SR3StateBackend(manager, num_shards=4, num_replicas=2)
    cluster = LocalCluster(
        build_wordcount_topology(num_sentences=num_sentences, seed=seed),
        backend=backend,
    )
    cluster.protect_stateful_tasks()
    return cluster, backend


def settled(backend, handles):
    backend.sim.run_until_idle()
    return [handle.result for handle in handles]


class TestIncrementalSaveRounds:
    def test_first_round_full_then_deltas(self):
        cluster, backend = wordcount_cluster()
        cluster.run(max_emissions=400)
        first = settled(backend, backend.save_all())
        assert first and all(r.mode == "full" for r in first)
        cluster.run(max_emissions=20)
        second = settled(backend, backend.save_all())
        assert all(r.mode == "delta" for r in second)
        assert all(r.chain_len == 2 for r in second)

    def test_delta_rounds_ship_fewer_bytes(self):
        cluster, backend = wordcount_cluster()
        cluster.run(max_emissions=200)
        first = settled(backend, backend.save_all())
        cluster.run(max_emissions=20)
        second = settled(backend, backend.save_all())
        assert sum(r.bytes_transferred for r in second) < sum(
            r.bytes_transferred for r in first
        )

    def test_incremental_false_forces_full_rounds(self):
        cluster, backend = wordcount_cluster()
        cluster.run(max_emissions=200)
        settled(backend, backend.save_all(incremental=False))
        cluster.run(max_emissions=50)
        rounds = settled(backend, backend.save_all(incremental=False))
        assert all(r.mode == "full" for r in rounds)
        assert all(r.chain_len == 1 for r in rounds)

    def test_quiet_task_still_extends_its_chain(self):
        # A task with no dirtied keys between rounds ships header-only
        # deltas rather than rewriting its base.
        cluster, backend = wordcount_cluster()
        cluster.run(max_emissions=200)
        settled(backend, backend.save_all())
        rounds = settled(backend, backend.save_all())
        assert all(r.mode == "delta" for r in rounds)
        assert all(r.delta_bytes < 1024 for r in rounds)


class TestChainRecovery:
    def test_killed_task_recovers_chain_replayed_state(self):
        cluster, backend = wordcount_cluster()
        cluster.run(max_emissions=400)
        cluster.checkpoint()
        cluster.run(max_emissions=20)
        cluster.checkpoint()
        manager = backend.manager
        assert any(
            r.chain is not None and r.chain.length >= 2
            for r in manager.states.values()
        )
        before = cluster.state_checksums()
        cluster.kill_task("count", 0)
        cluster.recover_task("count", 0)
        after = cluster.state_checksums()
        assert after["count[0]"] == before["count[0]"]

    def test_recovery_then_more_incremental_rounds(self):
        # After a recovery rebuilds the store, subsequent save rounds keep
        # diffing correctly against the recovered image.
        cluster, backend = wordcount_cluster()
        cluster.run(max_emissions=400)
        cluster.checkpoint()
        cluster.run(max_emissions=20)
        cluster.checkpoint()
        cluster.kill_task("count", 0)
        cluster.recover_task("count", 0)
        cluster.run(max_emissions=20)
        rounds = settled(backend, backend.save_all())
        assert all(r.duration > 0 for r in rounds)
        before = cluster.state_checksums()
        cluster.kill_task("count", 0)
        cluster.recover_task("count", 0)
        assert cluster.state_checksums()["count[0]"] == before["count[0]"]
