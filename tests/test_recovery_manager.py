"""Unit tests for the recovery manager."""

import pytest

from repro.bench.harness import saved_delta
from repro.errors import RecoveryError, StateError
from repro.recovery.line import LineRecovery
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.state.chain import ChainPlan, CompactionPolicy
from repro.state.partitioner import partition_synthetic
from repro.state.version import StateVersion
from repro.util.sizes import MB


def shards_for(name, size=8 * MB, count=4, seq=1):
    return partition_synthetic(name, int(size), count, StateVersion(0.0, seq))


class TestRegistration:
    def test_register_and_lookup(self, world):
        registered = world.manager.register(
            world.overlay.nodes[0], shards_for("a/s"), 2
        )
        assert registered.state_bytes == pytest.approx(8 * MB)
        assert "a/s" in world.manager.states

    def test_duplicate_rejected(self, world):
        world.manager.register(world.overlay.nodes[0], shards_for("a/s"), 2)
        with pytest.raises(StateError):
            world.manager.register(world.overlay.nodes[1], shards_for("a/s"), 2)

    def test_empty_shards_rejected(self, world):
        with pytest.raises(StateError):
            world.manager.register(world.overlay.nodes[0], [], 2)

    def test_refresh_shards(self, world):
        world.manager.register(world.overlay.nodes[0], shards_for("a/s"), 2)
        world.manager.refresh_shards("a/s", shards_for("a/s", size=16 * MB, seq=2))
        assert world.manager.states["a/s"].state_bytes == pytest.approx(16 * MB)

    def test_refresh_wrong_name_rejected(self, world):
        world.manager.register(world.overlay.nodes[0], shards_for("a/s"), 2)
        with pytest.raises(StateError):
            world.manager.refresh_shards("a/s", shards_for("other"))

    def test_refresh_unknown_state(self, world):
        with pytest.raises(StateError):
            world.manager.refresh_shards("ghost", shards_for("ghost"))


class TestSaveAndRecover:
    def test_save_records_plan(self, world):
        world.manager.register(world.overlay.nodes[0], shards_for("a/s"), 2)
        handle = world.manager.save("a/s")
        world.sim.run_until_idle()
        registered = world.manager.states["a/s"]
        assert registered.plan is not None
        assert registered.last_save_duration == handle.result.duration

    def test_save_all(self, world):
        for i, name in enumerate(["a/s", "b/s"]):
            world.manager.register(world.overlay.nodes[i], shards_for(name), 2)
        handles = world.manager.save_all()
        world.sim.run_until_idle()
        assert len(handles) == 2
        assert all(h.done for h in handles)

    def test_recover_unsaved_state_rejected(self, world):
        world.manager.register(world.overlay.nodes[0], shards_for("a/s"), 2)
        with pytest.raises(RecoveryError):
            world.manager.recover("a/s")

    def test_recover_alive_owner_needs_explicit_replacement(self, world):
        world.save_synthetic("a/s")
        with pytest.raises(RecoveryError):
            world.manager.recover("a/s")

    def test_recover_with_explicit_replacement(self, world):
        world.save_synthetic("a/s")
        handle = world.manager.recover("a/s", replacement=world.overlay.nodes[5])
        results = world.manager.run([handle])
        assert results[0].replacement == world.overlay.nodes[5].name

    def test_recover_after_owner_failure_auto_replacement(self, world):
        world.save_synthetic("a/s")
        owner = world.manager.states["a/s"].owner
        world.overlay.fail_node(owner)
        handle = world.manager.recover("a/s")
        result = world.manager.run([handle])[0]
        expected = world.overlay.replacement_for(owner)
        assert result.replacement == expected.name

    def test_unknown_state(self, world):
        with pytest.raises(StateError):
            world.manager.recover("ghost")


class TestMechanismSelection:
    def test_small_state_selects_star(self, world):
        world.save_synthetic("a/s", size=8 * MB)
        assert isinstance(world.manager.mechanism_for("a/s"), StarRecovery)

    def test_large_state_unconstrained_selects_line(self, world):
        world.save_synthetic("a/s", size=128 * MB, shards=16)
        assert isinstance(world.manager.mechanism_for("a/s"), LineRecovery)

    def test_large_state_constrained_selects_tree(self, world):
        world.manager.bandwidth_constrained = True
        world.save_synthetic("a/s", size=128 * MB, shards=16)
        assert isinstance(world.manager.mechanism_for("a/s"), TreeRecovery)

    def test_explicit_mechanism_wins(self, world):
        world.save_synthetic("a/s", size=128 * MB, shards=16)
        owner = world.manager.states["a/s"].owner
        world.overlay.fail_node(owner)
        handle = world.manager.recover("a/s", mechanism=StarRecovery())
        result = world.manager.run([handle])[0]
        assert result.mechanism == "star"


class TestMultipleFailures:
    def test_on_failures_recovers_only_affected_states(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        owners = w.overlay.nodes[:3]
        for i, owner in enumerate(owners):
            w.manager.register(owner, shards_for(f"app{i}/s"), 2)
        for h in w.manager.save_all():
            pass
        w.sim.run_until_idle()
        w.overlay.fail_node(owners[0])
        w.overlay.fail_node(owners[2])
        handles = w.manager.on_failures([owners[0], owners[2]])
        assert len(handles) == 2
        results = w.manager.run(handles)
        names = {r.state_name for r in results}
        assert names == {"app0/s", "app2/s"}

    def test_simultaneous_recoveries_share_simulation(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        owners = w.overlay.nodes[:4]
        for i, owner in enumerate(owners):
            w.manager.register(owner, shards_for(f"app{i}/s", size=16 * MB), 2)
        w.manager.save_all()
        w.sim.run_until_idle()
        for owner in owners:
            w.overlay.fail_node(owner)
        results = w.manager.run(w.manager.on_failures(owners))
        assert len(results) == 4
        # Concurrent recoveries finish; each took nonzero simulated time.
        assert all(r.duration > 0 for r in results)


class TestChainSaves:
    def test_delta_round_extends_chain(self, world):
        registered, _ = world.save_synthetic()
        _, result = saved_delta(world, "app/state", 128 * 1024)
        assert result.mode == "delta"
        assert result.chain_len == 2
        assert registered.chain.length == 2
        assert isinstance(registered.plan, ChainPlan)

    def test_full_save_resets_chain(self, world):
        registered, _ = world.save_synthetic()
        saved_delta(world, "app/state", 128 * 1024)
        handle = world.manager.save("app/state")
        world.sim.run_until_idle()
        assert handle.result.mode == "full"
        assert registered.chain.length == 1
        assert not isinstance(registered.plan, ChainPlan)

    def test_compaction_length_promotes_delta_to_full(self, world):
        world.manager.compaction = CompactionPolicy(max_chain_len=2)
        registered, _ = world.save_synthetic()
        _, first = saved_delta(world, "app/state", 64 * 1024)
        assert first.mode == "delta"
        _, second = saved_delta(world, "app/state", 64 * 1024)
        assert second.mode == "full"
        assert registered.chain.length == 1

    def test_compaction_ratio_promotes_delta_to_full(self, world):
        # 5 MB of deltas against an 8 MB base overshoots the default 0.5
        # ratio, so the round is promoted before it ships.
        world.save_synthetic(size=8 * MB)
        _, result = saved_delta(world, "app/state", 5 * MB)
        assert result.mode == "full"

    def test_replica_loss_promotes_delta_to_full(self, world):
        registered, _ = world.save_synthetic()
        saved_delta(world, "app/state", 64 * 1024)
        holder = next(
            placed.node
            for link in registered.chain.links
            for placed in link.plan.placements
            if placed.node is not registered.owner
        )
        world.overlay.fail_node(holder)
        _, result = saved_delta(world, "app/state", 64 * 1024)
        assert result.mode == "full"
        assert registered.chain.length == 1

    def test_recovered_snapshot_replays_chain(self, world):
        registered, _ = world.save_synthetic(size=8 * MB)
        saved_delta(world, "app/state", 64 * 1024)
        snapshot = world.manager.recovered_snapshot("app/state")
        assert snapshot.size_bytes == 8 * MB
        assert snapshot.version == registered.chain.tip_version

    def test_chain_recovery_fetches_every_segment(self, world):
        registered, _ = world.save_synthetic()
        saved_delta(world, "app/state", 64 * 1024)
        saved_delta(world, "app/state", 64 * 1024)
        assert registered.chain.length == 3
        world.fail_owner("app/state")
        result = world.manager.run([world.manager.recover("app/state")])[0]
        assert result.shards_recovered == 3 * 4


class TestSaveRecoveryInterlock:
    def test_save_rejected_while_recovery_in_flight(self, world):
        world.save_synthetic()
        handle = world.manager.recover(
            "app/state", replacement=world.overlay.nodes[5]
        )
        assert not handle.done
        with pytest.raises(RecoveryError, match="still in flight"):
            world.manager.save("app/state")
        world.manager.run([handle])
        # Once the recovery resolves, save rounds are accepted again.
        saved = world.manager.save("app/state")
        world.sim.run_until_idle()
        assert saved.result.mode == "full"

    def test_delta_save_rejected_while_recovery_in_flight(self, world):
        world.save_synthetic()
        saved_delta(world, "app/state", 64 * 1024)
        handle = world.manager.recover(
            "app/state", replacement=world.overlay.nodes[5]
        )
        with pytest.raises(RecoveryError, match="still in flight"):
            saved_delta(world, "app/state", 64 * 1024)
        world.manager.run([handle])

    def test_reregister_after_save_rejected(self, world):
        world.save_synthetic("a/s")
        with pytest.raises(StateError, match="already registered"):
            world.manager.register(world.overlay.nodes[1], shards_for("a/s"), 2)
