"""Unit tests for the recovery manager."""

import pytest

from repro.errors import RecoveryError, StateError
from repro.recovery.line import LineRecovery
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.state.partitioner import partition_synthetic
from repro.state.version import StateVersion
from repro.util.sizes import MB


def shards_for(name, size=8 * MB, count=4, seq=1):
    return partition_synthetic(name, int(size), count, StateVersion(0.0, seq))


class TestRegistration:
    def test_register_and_lookup(self, world):
        registered = world.manager.register(
            world.overlay.nodes[0], shards_for("a/s"), 2
        )
        assert registered.state_bytes == pytest.approx(8 * MB)
        assert "a/s" in world.manager.states

    def test_duplicate_rejected(self, world):
        world.manager.register(world.overlay.nodes[0], shards_for("a/s"), 2)
        with pytest.raises(StateError):
            world.manager.register(world.overlay.nodes[1], shards_for("a/s"), 2)

    def test_empty_shards_rejected(self, world):
        with pytest.raises(StateError):
            world.manager.register(world.overlay.nodes[0], [], 2)

    def test_refresh_shards(self, world):
        world.manager.register(world.overlay.nodes[0], shards_for("a/s"), 2)
        world.manager.refresh_shards("a/s", shards_for("a/s", size=16 * MB, seq=2))
        assert world.manager.states["a/s"].state_bytes == pytest.approx(16 * MB)

    def test_refresh_wrong_name_rejected(self, world):
        world.manager.register(world.overlay.nodes[0], shards_for("a/s"), 2)
        with pytest.raises(StateError):
            world.manager.refresh_shards("a/s", shards_for("other"))

    def test_refresh_unknown_state(self, world):
        with pytest.raises(StateError):
            world.manager.refresh_shards("ghost", shards_for("ghost"))


class TestSaveAndRecover:
    def test_save_records_plan(self, world):
        world.manager.register(world.overlay.nodes[0], shards_for("a/s"), 2)
        handle = world.manager.save("a/s")
        world.sim.run_until_idle()
        registered = world.manager.states["a/s"]
        assert registered.plan is not None
        assert registered.last_save_duration == handle.result.duration

    def test_save_all(self, world):
        for i, name in enumerate(["a/s", "b/s"]):
            world.manager.register(world.overlay.nodes[i], shards_for(name), 2)
        handles = world.manager.save_all()
        world.sim.run_until_idle()
        assert len(handles) == 2
        assert all(h.done for h in handles)

    def test_recover_unsaved_state_rejected(self, world):
        world.manager.register(world.overlay.nodes[0], shards_for("a/s"), 2)
        with pytest.raises(RecoveryError):
            world.manager.recover("a/s")

    def test_recover_alive_owner_needs_explicit_replacement(self, world):
        world.save_synthetic("a/s")
        with pytest.raises(RecoveryError):
            world.manager.recover("a/s")

    def test_recover_with_explicit_replacement(self, world):
        world.save_synthetic("a/s")
        handle = world.manager.recover("a/s", replacement=world.overlay.nodes[5])
        results = world.manager.run([handle])
        assert results[0].replacement == world.overlay.nodes[5].name

    def test_recover_after_owner_failure_auto_replacement(self, world):
        world.save_synthetic("a/s")
        owner = world.manager.states["a/s"].owner
        world.overlay.fail_node(owner)
        handle = world.manager.recover("a/s")
        result = world.manager.run([handle])[0]
        expected = world.overlay.replacement_for(owner)
        assert result.replacement == expected.name

    def test_unknown_state(self, world):
        with pytest.raises(StateError):
            world.manager.recover("ghost")


class TestMechanismSelection:
    def test_small_state_selects_star(self, world):
        world.save_synthetic("a/s", size=8 * MB)
        assert isinstance(world.manager.mechanism_for("a/s"), StarRecovery)

    def test_large_state_unconstrained_selects_line(self, world):
        world.save_synthetic("a/s", size=128 * MB, shards=16)
        assert isinstance(world.manager.mechanism_for("a/s"), LineRecovery)

    def test_large_state_constrained_selects_tree(self, world):
        world.manager.bandwidth_constrained = True
        world.save_synthetic("a/s", size=128 * MB, shards=16)
        assert isinstance(world.manager.mechanism_for("a/s"), TreeRecovery)

    def test_explicit_mechanism_wins(self, world):
        world.save_synthetic("a/s", size=128 * MB, shards=16)
        owner = world.manager.states["a/s"].owner
        world.overlay.fail_node(owner)
        handle = world.manager.recover("a/s", mechanism=StarRecovery())
        result = world.manager.run([handle])[0]
        assert result.mechanism == "star"


class TestMultipleFailures:
    def test_on_failures_recovers_only_affected_states(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        owners = w.overlay.nodes[:3]
        for i, owner in enumerate(owners):
            w.manager.register(owner, shards_for(f"app{i}/s"), 2)
        for h in w.manager.save_all():
            pass
        w.sim.run_until_idle()
        w.overlay.fail_node(owners[0])
        w.overlay.fail_node(owners[2])
        handles = w.manager.on_failures([owners[0], owners[2]])
        assert len(handles) == 2
        results = w.manager.run(handles)
        names = {r.state_name for r in results}
        assert names == {"app0/s", "app2/s"}

    def test_simultaneous_recoveries_share_simulation(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        owners = w.overlay.nodes[:4]
        for i, owner in enumerate(owners):
            w.manager.register(owner, shards_for(f"app{i}/s", size=16 * MB), 2)
        w.manager.save_all()
        w.sim.run_until_idle()
        for owner in owners:
            w.overlay.fail_node(owner)
        results = w.manager.run(w.manager.on_failures(owners))
        assert len(results) == 4
        # Concurrent recoveries finish; each took nonzero simulated time.
        assert all(r.duration > 0 for r in results)
