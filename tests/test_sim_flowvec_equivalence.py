"""Vectorized water-filling equivalence: the numpy path vs the scalar solve.

Mirrors ``test_sim_network_equivalence.py`` one layer down: the vectorized
allocator in :mod:`repro.sim.flowvec` activates only when the live flow set
crosses a size threshold, so forcing the thresholds to 2/1/1 routes every
workload through the numpy arrays while the default thresholds keep the
same workload on the scalar reference. For any seed the two must produce
byte-identical completion times, telemetry timelines, and trace output —
that invariant is what lets the 50k-node cells regenerate the gated
``BENCH_sr3.json`` keys exactly.
"""

import builtins
import importlib
import json
import math
import random
from contextlib import contextmanager

import pytest

from repro.obs.tracer import Tracer
from repro.sim import flowvec
from repro.sim.kernel import Simulator
from repro.sim.network import Network

needs_numpy = pytest.mark.skipif(
    not flowvec.HAVE_NUMPY, reason="numpy not installed"
)


@contextmanager
def _thresholds(activate, deactivate, waterfill):
    """Temporarily re-pin the vector-mode thresholds."""
    saved = (
        flowvec.VECTOR_ACTIVATE,
        flowvec.VECTOR_DEACTIVATE,
        flowvec.WATERFILL_MIN,
    )
    flowvec.VECTOR_ACTIVATE = activate
    flowvec.VECTOR_DEACTIVATE = deactivate
    flowvec.WATERFILL_MIN = waterfill
    try:
        yield
    finally:
        (
            flowvec.VECTOR_ACTIVATE,
            flowvec.VECTOR_DEACTIVATE,
            flowvec.WATERFILL_MIN,
        ) = saved


def _vector_mode():
    """Every component, however small, runs through the numpy solver."""
    return _thresholds(2, 1, 1)


def _scalar_mode():
    """Vector mode can never activate: the pure-Python reference path."""
    return _thresholds(10**9, 1, 10**9)


def _trace_dump(tracer: Tracer) -> str:
    spans = []
    for span in tracer.spans:
        spans.append(
            {
                "name": span.name,
                "category": span.category,
                "start": span.start,
                "end": span.end,
                "attrs": {k: repr(v) for k, v in sorted(span.attrs.items())},
            }
        )
    return json.dumps(spans, sort_keys=True)


def _run_mixed_workload(seed: int):
    """Randomized transfers, app flows with demand caps, degraded hosts.

    Returns everything observable about the run, serialized
    deterministically: (completions, aborts, telemetry_json, trace_json).
    """
    rng = random.Random(seed)
    tracer = Tracer(f"flowvec-equiv-{seed}")
    sim = Simulator(tracer=tracer)
    net = Network(sim)
    hosts = [
        net.add_host(
            f"h{i}",
            up_bw=rng.choice([50.0, 100.0, 200.0, math.inf]),
            down_bw=rng.choice([50.0, 100.0, 200.0, math.inf]),
            latency=rng.choice([0.0, 0.001, 0.01]),
        )
        for i in range(10)
    ]
    completions = []
    aborts = []
    flows = []
    app_flows = []

    def start_transfer():
        src, dst = rng.sample(hosts, 2)
        if not (src.alive and dst.alive):
            return
        size = rng.uniform(10.0, 5000.0)
        tag = f"t{len(flows)}"
        flow = net.transfer(
            src,
            dst,
            size,
            on_complete=lambda f: completions.append((f.tag, sim.now)),
            on_abort=lambda f: aborts.append((f.tag, sim.now)),
            tag=tag,
        )
        flows.append(flow)

    def open_app():
        src, dst = rng.sample(hosts, 2)
        if not (src.alive and dst.alive):
            return
        flow = net.open_app_flow(
            src,
            dst,
            demand=rng.uniform(5.0, 120.0),
            tag=f"app{len(app_flows)}",
        )
        app_flows.append(flow)

    def retune_demand():
        live = [f for f in app_flows if not (f.done or f.aborted)]
        if live:
            net.set_flow_demand(rng.choice(live), rng.uniform(5.0, 150.0))

    def degrade_host():
        net.set_host_bandwidth(
            rng.choice(hosts), rng.uniform(20.0, 300.0), rng.uniform(20.0, 300.0)
        )

    for _ in range(36):
        sim.schedule(rng.uniform(0.0, 5.0), start_transfer)
    # Same-instant bursts exercise the coalesced settle path.
    burst_at = rng.uniform(0.5, 2.0)
    for _ in range(5):
        sim.schedule(burst_at, start_transfer)
    for _ in range(4):
        sim.schedule(rng.uniform(0.0, 2.0), open_app)
    for _ in range(3):
        sim.schedule(rng.uniform(2.0, 5.0), retune_demand)
    for _ in range(3):
        sim.schedule(rng.uniform(1.0, 4.0), degrade_host)
    sim.schedule(
        rng.uniform(1.0, 3.0),
        lambda: flows and net.abort_flow(rng.choice(flows)),
    )
    sim.schedule(
        rng.uniform(1.5, 3.5),
        lambda: net.partition([h.name for h in hosts[:3]]),
    )
    sim.schedule(4.0, net.heal_partition)
    sim.schedule(
        rng.uniform(2.0, 4.0), lambda: net.fail_host(hosts[rng.randrange(10)])
    )
    # App flows never complete on their own; retire them so the run drains.
    sim.schedule(
        60.0,
        lambda: [
            net.close_app_flow(f) for f in app_flows if not (f.done or f.aborted)
        ],
    )
    sim.run_until_idle()
    telemetry = json.dumps(sim.metrics.dump(), sort_keys=True)
    return completions, aborts, telemetry, _trace_dump(tracer)


@needs_numpy
class TestVectorizedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 23, 41])
    def test_mixed_workloads_byte_identical(self, seed):
        with _vector_mode():
            vec = _run_mixed_workload(seed)
        with _scalar_mode():
            ref = _run_mixed_workload(seed)
        assert vec[0] == ref[0]  # completion (tag, time) pairs, in order
        assert vec[1] == ref[1]  # abort (tag, time) pairs, in order
        assert vec[2] == ref[2]  # serialized telemetry timelines
        assert vec[3] == ref[3]  # serialized trace spans

    def test_demand_capped_app_flow_exact_shares(self):
        """An app flow's demand cap binds exactly in the numpy solve."""
        with _vector_mode():
            sim = Simulator()
            net = Network(sim)
            a = net.add_host("a", up_bw=100.0, latency=0.0)
            b = net.add_host("b", down_bw=100.0, latency=0.0)
            done = []
            # Demand 30 B/s leaves 70 B/s for the bulk transfer.
            app = net.open_app_flow(a, b, demand=30.0)
            net.transfer(a, b, 700.0, on_complete=lambda f: done.append(sim.now))
            sim.schedule(20.0, lambda: net.close_app_flow(app))
            sim.run_until_idle()
            assert done == [pytest.approx(10.0)]

    def test_lifecycle_deactivates_below_threshold(self):
        """Vector mode engages on admission and disengages as flows drain."""
        with _thresholds(4, 2, 1):
            sim = Simulator()
            net = Network(sim)
            srcs = [net.add_host(f"s{i}", up_bw=100.0, latency=0.0) for i in range(5)]
            dsts = [net.add_host(f"d{i}", down_bw=100.0, latency=0.0) for i in range(5)]
            done = []
            for i, (src, dst) in enumerate(zip(srcs, dsts)):
                # Staggered sizes so flows finish one at a time.
                net.transfer(
                    src,
                    dst,
                    100.0 * (i + 1),
                    on_complete=lambda f: done.append(sim.now),
                )
            sim.run_until_idle()
            assert len(done) == 5
            assert done == sorted(done)
            assert net._vec is None  # drained below VECTOR_DEACTIVATE

    def test_host_byte_counters_read_through_vector_table(self):
        """External readers/writers of Host byte counters stay transparent.

        The checkpointing baseline adds to ``bytes_received`` directly;
        while vector mode owns the counters those writes must land in the
        table and survive deactivation.
        """
        with _vector_mode():
            sim = Simulator()
            net = Network(sim)
            a = net.add_host("a", up_bw=100.0, latency=0.0)
            b = net.add_host("b", down_bw=100.0, latency=0.0)
            for _ in range(3):
                net.transfer(a, b, 1000.0)
            sacrificial = net.transfer(a, b, 5000.0)
            seen = {}

            def mid_run():
                # The abort settles progress (activating vector mode for
                # the 4-flow set), then removes one flow.
                net.abort_flow(sacrificial)
                seen["vec_active"] = net._vec is not None
                seen["sent"] = a.bytes_sent
                b.bytes_received += 123.0  # external writer mid-vector-mode

            sim.schedule(1.0, mid_run)
            sim.run_until_idle()
            assert seen["vec_active"] is True
            # Four flows shared 100 B/s for 1 s before the abort.
            assert seen["sent"] == pytest.approx(100.0)
            assert net._vec is None  # drained -> detached
            # 25 B from the aborted flow + 3 x 1000 B + the external write.
            assert b.bytes_received == pytest.approx(25.0 + 3000.0 + 123.0)


class TestNoNumpyFallback:
    def test_import_path_without_numpy(self):
        """The module imports, declines vector mode, and stays correct."""
        real_import = builtins.__import__

        def no_numpy(name, *args, **kwargs):
            if name == "numpy":
                raise ImportError("numpy disabled for test")
            return real_import(name, *args, **kwargs)

        builtins.__import__ = no_numpy
        try:
            importlib.reload(flowvec)
            assert flowvec.HAVE_NUMPY is False
            # Even with thresholds forced down, activation must decline.
            with _vector_mode():
                sim = Simulator()
                net = Network(sim)
                a = net.add_host("a", up_bw=100.0, latency=0.0)
                b = net.add_host("b", down_bw=100.0, latency=0.0)
                done = []
                for _ in range(3):
                    net.transfer(
                        a, b, 1000.0, on_complete=lambda f: done.append(sim.now)
                    )
                sim.run_until_idle()
                assert net._vec is None
                assert done == [pytest.approx(30.0)] * 3
        finally:
            builtins.__import__ = real_import
            importlib.reload(flowvec)
        assert flowvec.HAVE_NUMPY is True
