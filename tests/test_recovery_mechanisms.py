"""Unit tests for the star-, line-, and tree-structured mechanisms."""

import pytest

from repro.errors import InsufficientShardsError, RecoveryError
from repro.recovery.line import LineRecovery
from repro.recovery.model import run_handles
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.util.sizes import MB


def recover(world, mechanism, name="app/state"):
    registered = world.manager.states[name]
    replacement = world.fail_owner(name)
    handle = mechanism.start(world.ctx, registered.plan, replacement, name)
    return run_handles(world.sim, [handle])[0]


class TestStar:
    def test_completes_and_reports(self, world):
        world.save_synthetic(size=8 * MB, shards=4)
        result = recover(world, StarRecovery(fanout_bits=2))
        assert result.mechanism == "star"
        assert result.state_bytes == pytest.approx(8 * MB)
        assert result.shards_recovered == 4
        assert result.duration > 0
        assert result.bytes_transferred == pytest.approx(8 * MB)

    def test_uses_distinct_providers(self, world):
        world.save_synthetic(size=8 * MB, shards=4, replicas=2)
        result = recover(world, StarRecovery())
        # replacement + 4 distinct providers
        assert result.nodes_involved == 5

    def test_larger_state_slower(self, world_factory):
        times = []
        for size in (8 * MB, 64 * MB):
            w = world_factory()
            w.save_synthetic(size=size, shards=8)
            times.append(recover(w, StarRecovery()).duration)
        assert times[1] > times[0]

    def test_fanout_flat_when_unconstrained(self, world_factory):
        times = []
        for bits in (1, 4):
            w = world_factory()
            w.save_synthetic(size=16 * MB, shards=8)
            times.append(recover(w, StarRecovery(fanout_bits=bits)).duration)
        assert times[0] == pytest.approx(times[1], rel=0.05)

    def test_missing_all_replicas_fails(self, world):
        registered, _ = world.save_synthetic(size=8 * MB, shards=4)
        for placed in registered.plan.for_shard(0):
            placed.node.drop_shard(placed.replica.key)
        replacement = world.fail_owner()
        handle = StarRecovery().start(
            world.ctx, registered.plan, replacement, "app/state"
        )
        with pytest.raises(InsufficientShardsError):
            handle.result

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            StarRecovery(fanout_bits=-1)

    def test_recovers_with_one_surviving_replica_per_shard(self, world):
        registered, _ = world.save_synthetic(size=8 * MB, shards=4, replicas=2)
        # Drop one replica of every shard.
        for index in registered.plan.shard_indexes():
            placed = registered.plan.for_shard(index)[0]
            placed.node.drop_shard(placed.replica.key)
        result = recover(world, StarRecovery())
        assert result.shards_recovered == 4


class TestLine:
    def test_completes(self, world):
        world.save_synthetic(size=16 * MB, shards=8)
        result = recover(world, LineRecovery(path_length=4))
        assert result.mechanism == "line"
        assert result.detail["path_length"] <= 4
        assert result.duration > 0

    def test_longer_path_slower(self, world_factory):
        times = []
        for length in (4, 32):
            w = world_factory(num_nodes=128, placement="hash")
            w.save_synthetic(size=16 * MB, shards=32)
            times.append(recover(w, LineRecovery(path_length=length)).duration)
        assert times[1] > times[0]

    def test_chain_capped_by_distinct_providers(self, world):
        world.save_synthetic(size=8 * MB, shards=2)
        result = recover(world, LineRecovery(path_length=16))
        assert result.detail["path_length"] <= 2

    def test_invalid_path(self):
        with pytest.raises(ValueError):
            LineRecovery(path_length=0)

    def test_missing_shard_fails(self, world):
        registered, _ = world.save_synthetic(size=8 * MB, shards=4)
        for placed in registered.plan.for_shard(1):
            placed.node.drop_shard(placed.replica.key)
        replacement = world.fail_owner()
        handle = LineRecovery().start(
            world.ctx, registered.plan, replacement, "app/state"
        )
        with pytest.raises(InsufficientShardsError):
            handle.result


class TestTree:
    def test_completes(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        w.save_synthetic(size=32 * MB, shards=4)
        result = recover(w, TreeRecovery(fanout_bits=1, sub_shards=8))
        assert result.mechanism == "tree"
        assert result.duration > 0
        assert result.shards_recovered == 4
        assert result.detail["tree_height"] >= 1

    def test_larger_fanout_shallower_tree(self, world_factory):
        heights = []
        for bits in (1, 3):
            w = world_factory(num_nodes=128, placement="hash")
            w.save_synthetic(size=32 * MB, shards=4)
            result = recover(w, TreeRecovery(fanout_bits=bits, sub_shards=16))
            heights.append(result.detail["tree_height"])
        assert heights[1] < heights[0]

    def test_branch_depth_forces_deep_tree(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        w.save_synthetic(size=32 * MB, shards=2)
        result = recover(w, TreeRecovery(branch_depth=12, sub_shards=4))
        assert result.detail["tree_height"] >= 4

    def test_deeper_is_slower(self, world_factory):
        times = []
        for depth in (2, 32):
            w = world_factory(num_nodes=160, placement="hash")
            w.save_synthetic(size=32 * MB, shards=4)
            times.append(
                recover(w, TreeRecovery(branch_depth=depth, sub_shards=8)).duration
            )
        assert times[1] > times[0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TreeRecovery(fanout_bits=-1)
        with pytest.raises(ValueError):
            TreeRecovery(branch_depth=0)
        with pytest.raises(ValueError):
            TreeRecovery(sub_shards=0)

    def test_missing_shard_fails(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        registered, _ = w.save_synthetic(size=8 * MB, shards=4)
        for placed in registered.plan.for_shard(2):
            placed.node.drop_shard(placed.replica.key)
        replacement = w.fail_owner()
        handle = TreeRecovery().start(w.ctx, registered.plan, replacement, "app/state")
        with pytest.raises(InsufficientShardsError):
            handle.result


class TestRegimeOrderings:
    """The headline Fig. 8 regime claims as unit-level assertions."""

    def test_star_fastest_for_small_state(self, world_factory):
        times = {}
        for name, mech in (
            ("star", StarRecovery(fanout_bits=2)),
            ("line", LineRecovery(path_length=8)),
            ("tree", TreeRecovery(fanout_bits=1, sub_shards=8)),
        ):
            w = world_factory()
            w.save_synthetic(size=8 * MB, shards=4)
            times[name] = recover(w, mech).duration
        assert times["star"] == min(times.values())

    def test_tree_fastest_for_large_state_unconstrained(self, world_factory):
        times = {}
        for name, mech in (
            ("star", StarRecovery(fanout_bits=2)),
            ("line", LineRecovery(path_length=8)),
            ("tree", TreeRecovery(fanout_bits=1, sub_shards=8)),
        ):
            w = world_factory()
            w.save_synthetic(size=128 * MB, shards=16)
            times[name] = recover(w, mech).duration
        assert times["tree"] == min(times.values())
        assert times["line"] == max(times.values())

    def test_star_slowest_for_large_state_constrained(self, world_factory):
        times = {}
        for name, mech in (
            ("star", StarRecovery(fanout_bits=2)),
            ("line", LineRecovery(path_length=8)),
            ("tree", TreeRecovery(fanout_bits=1, sub_shards=8)),
        ):
            w = world_factory(link_mbit=100)
            w.save_synthetic(size=128 * MB, shards=16)
            times[name] = recover(w, mech).duration
        assert times["star"] == max(times.values())


class TestHandles:
    def test_result_before_completion_raises(self, world):
        registered, _ = world.save_synthetic()
        replacement = world.fail_owner()
        handle = StarRecovery().start(
            world.ctx, registered.plan, replacement, "app/state"
        )
        with pytest.raises(RecoveryError):
            _ = handle.result

    def test_run_handles_multiple_concurrent(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        names = []
        for i in range(3):
            name = f"app{i}/state"
            from repro.state.partitioner import partition_synthetic
            from repro.state.version import StateVersion

            shards = partition_synthetic(name, 8 * MB, 4, StateVersion(0.0, 1))
            w.manager.register(w.overlay.nodes[i], shards, 2)
            w.manager.save(name)
            names.append(name)
        w.sim.run_until_idle()
        for i in range(3):
            w.overlay.fail_node(w.overlay.nodes[i])
        handles = w.manager.on_failures([w.overlay.nodes[i] for i in range(3)])
        results = run_handles(w.sim, handles)
        assert len(results) == 3
        assert all(r.duration > 0 for r in results)
