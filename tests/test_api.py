"""Unit tests for the SR3 public API façade (Table 2)."""

import pytest

from repro import SR3
from repro.errors import RecoveryError, StateError
from repro.recovery.selection import Mechanism
from repro.state.store import StateStore
from repro.util.sizes import MB


@pytest.fixture
def sr3():
    return SR3.create(num_nodes=64, seed=7)


def protect_dict(sr3, name="app/state", entries=None, shards=4, replicas=2):
    entries = entries if entries is not None else {f"k{i}": i for i in range(50)}
    owner = sr3.overlay.nodes[0]
    pieces = sr3.state_split(entries, name, num_shards=shards, num_replicas=replicas)
    result = sr3.save(owner, pieces)
    return owner, result


class TestStateSplit:
    def test_split_dict(self, sr3):
        shards = sr3.state_split({"a": 1, "b": 2}, "s", num_shards=2)
        assert len(shards) == 2
        assert all(s.state_name == "s" for s in shards)

    def test_split_store(self, sr3):
        store = StateStore("s")
        store.put("a", 1)
        shards = sr3.state_split(store, "s", num_shards=2)
        assert sum(len(s.entries) for s in shards) == 1

    def test_split_synthetic_size(self, sr3):
        shards = sr3.state_split(64 * MB, "s", num_shards=8)
        assert sum(s.size_bytes for s in shards) == 64 * MB
        assert all(s.synthetic for s in shards)

    def test_split_wrong_name_rejected(self, sr3):
        store = StateStore("other")
        with pytest.raises(StateError):
            sr3.state_split(store, "s", num_shards=2)


class TestSplitResult:
    def test_carries_replicas_and_name(self, sr3):
        result = sr3.state_split(
            {"a": 1, "b": 2}, "s", num_shards=2, num_replicas=3
        )
        assert result.num_replicas == 3
        assert result.state_name == "s"

    def test_behaves_like_shard_list(self, sr3):
        result = sr3.state_split({"a": 1, "b": 2}, "s", num_shards=2)
        assert len(result) == 2
        assert result[0].state_name == "s"
        assert list(result) == result.shards
        assert result[-1] is result.shards[-1]

    def test_save_uses_split_replicas(self, sr3):
        owner = sr3.overlay.nodes[0]
        pieces = sr3.state_split(
            {f"k{i}": i for i in range(10)}, "s", num_shards=2, num_replicas=3
        )
        result = sr3.save(owner, pieces)
        assert result.replicas_written == 6

    def test_save_explicit_replicas_override_split(self, sr3):
        owner = sr3.overlay.nodes[0]
        pieces = sr3.state_split({"a": 1}, "s", num_shards=1, num_replicas=3)
        result = sr3.save(owner, pieces, num_replicas=4)
        assert result.replicas_written == 4

    def test_save_bare_shard_list_uses_default(self, sr3):
        owner = sr3.overlay.nodes[0]
        pieces = sr3.state_split(
            {"a": 1, "b": 2}, "s", num_shards=2, num_replicas=3
        )
        result = sr3.save(owner, list(pieces))
        assert result.replicas_written == 2 * sr3.num_replicas

    def test_no_pending_replicas_side_channel(self, sr3):
        sr3.state_split({"a": 1}, "s", num_shards=1, num_replicas=5)
        assert not hasattr(sr3, "_pending_replicas")


class TestSaveRecover:
    def test_save_returns_result(self, sr3):
        _, result = protect_dict(sr3)
        assert result.replicas_written == 8
        assert result.duration > 0
        assert "app/state" in sr3.protected_states()

    def test_recover_after_failure_restores_content(self, sr3):
        owner, _ = protect_dict(sr3)
        sr3.overlay.fail_node(owner)
        snapshot, result = sr3.recover("app/state")
        assert snapshot.as_dict() == {f"k{i}": i for i in range(50)}
        assert result.duration > 0

    def test_recover_onto_alive_owner(self, sr3):
        owner, _ = protect_dict(sr3)
        snapshot, result = sr3.recover("app/state")
        assert result.replacement == owner.name
        assert len(snapshot) == 50

    def test_resave_bumps_version(self, sr3):
        owner, _ = protect_dict(sr3)
        pieces = sr3.state_split({"x": 1}, "app/state", num_shards=2)
        sr3.save(owner, pieces)
        snapshot, _ = sr3.recover("app/state")
        assert snapshot.as_dict() == {"x": 1}

    def test_recover_unknown_state(self, sr3):
        with pytest.raises(RecoveryError):
            sr3.recover("ghost")

    def test_save_zero_shards_rejected(self, sr3):
        with pytest.raises(StateError):
            sr3.save(sr3.overlay.nodes[0], [])

    def test_state_bytes_query(self, sr3):
        protect_dict(sr3)
        assert sr3.state_bytes("app/state") > 0
        with pytest.raises(RecoveryError):
            sr3.state_bytes("ghost")


class TestDefines:
    def test_star_define_pins_mechanism(self, sr3):
        owner, _ = protect_dict(sr3)
        sr3.define("app/state", "star", star_fanout=3)
        sr3.overlay.fail_node(owner)
        _, result = sr3.recover("app/state")
        assert result.mechanism == "star"
        assert result.detail["fanout_bits"] == 3

    def test_line_define_pins_mechanism(self, sr3):
        owner, _ = protect_dict(sr3, shards=8)
        sr3.define("app/state", "line", length_of_path=4)
        sr3.overlay.fail_node(owner)
        _, result = sr3.recover("app/state")
        assert result.mechanism == "line"

    def test_tree_define_pins_mechanism(self, sr3):
        owner, _ = protect_dict(sr3, shards=4)
        sr3.define("app/state", "tree", fanout=2)
        sr3.overlay.fail_node(owner)
        _, result = sr3.recover("app/state")
        assert result.mechanism == "tree"

    def test_explicit_argument_overrides_policy(self, sr3):
        from repro.recovery.star import StarRecovery

        owner, _ = protect_dict(sr3)
        sr3.define("app/state", "line")
        sr3.overlay.fail_node(owner)
        _, result = sr3.recover("app/state", mechanism=StarRecovery())
        assert result.mechanism == "star"


class TestDefine:
    def test_define_by_name_with_paper_knob(self, sr3):
        impl = sr3.define("app", "star", star_fanout=3)
        assert impl.fanout_bits == 3

    def test_define_by_enum(self, sr3):
        impl = sr3.define("app", Mechanism.LINE, length_of_path=4)
        assert impl.path_length == 4

    def test_define_native_knob_names(self, sr3):
        impl = sr3.define("app", "tree", fanout_bits=2, branch_depth=3)
        assert impl.fanout_bits == 2
        assert impl.branch_depth == 3

    def test_define_accepts_instance(self, sr3):
        from repro.recovery.tree import TreeRecovery

        built = TreeRecovery(fanout_bits=2)
        assert sr3.define("app", built) is built

    def test_define_instance_rejects_knobs(self, sr3):
        from repro.recovery.star import StarRecovery

        with pytest.raises(RecoveryError):
            sr3.define("app", StarRecovery(), star_fanout=1)

    def test_define_unknown_mechanism(self, sr3):
        with pytest.raises(RecoveryError):
            sr3.define("app", "ring")

    def test_define_unknown_knob(self, sr3):
        with pytest.raises(RecoveryError):
            sr3.define("app", "star", length_of_path=4)

    def test_define_pins_policy_used_by_recover(self, sr3):
        owner, _ = protect_dict(sr3)
        sr3.define("app/state", "star", star_fanout=1)
        sr3.overlay.fail_node(owner)
        _, result = sr3.recover("app/state")
        assert result.mechanism == "star"
        assert result.detail["fanout_bits"] == 1


class TestNoReplacementError:
    def test_descriptive_error_when_overlay_empty(self):
        sr3 = SR3.create(num_nodes=8, seed=3)
        owner, _ = protect_dict(sr3, shards=2)
        for node in list(sr3.overlay.nodes):
            sr3.overlay.fail_node(node, repair=False)
        with pytest.raises(RecoveryError, match="no replacement node is available"):
            sr3.recover("app/state")


class TestSelection:
    def test_small_state_selects_star(self, sr3):
        choice = sr3.selection("a", "latency-sensitive", 8 * MB)
        assert choice == Mechanism.STAR
        assert choice.mechanism is Mechanism.STAR
        assert choice.knobs == {"star_fanout": 2}
        assert choice.value == "star"

    def test_large_unconstrained_selects_line(self, sr3):
        choice = sr3.selection("a", "latency-sensitive", 128 * MB, network_bw_mbit=1000)
        assert choice == Mechanism.LINE
        assert choice.knobs["length_of_path"] >= 1

    def test_large_constrained_sensitive_selects_tree(self, sr3):
        choice = sr3.selection("a", "latency-sensitive", 128 * MB, network_bw_mbit=100)
        assert choice == Mechanism.TREE
        assert "fanout" in choice.knobs

    def test_large_constrained_insensitive_selects_line(self, sr3):
        choice = sr3.selection("a", "latency-insensitive", 128 * MB, network_bw_mbit=100)
        assert choice == Mechanism.LINE

    def test_selection_pins_policy_for_recover(self, sr3):
        owner, _ = protect_dict(sr3, name="a", shards=4)
        sr3.selection("a", "latency-sensitive", 8 * MB)
        sr3.overlay.fail_node(owner)
        _, result = sr3.recover("a", app_name="a")
        assert result.mechanism == "star"

    def test_invalid_requirement(self, sr3):
        with pytest.raises(RecoveryError):
            sr3.selection("a", "super-fast", 1 * MB)


class TestCreate:
    def test_constrained_links_applied(self):
        sr3 = SR3.create(num_nodes=16, seed=0, uplink_mbit=100, downlink_mbit=100)
        host = sr3.overlay.nodes[0].host
        assert host.up_bw == pytest.approx(12.5e6)

    def test_unconstrained_default(self):
        sr3 = SR3.create(num_nodes=16, seed=0)
        assert sr3.overlay.nodes[0].host.up_bw == float("inf")

    def test_deterministic_build(self):
        a = SR3.create(num_nodes=16, seed=42)
        b = SR3.create(num_nodes=16, seed=42)
        assert [n.node_id for n in a.overlay.nodes] == [
            n.node_id for n in b.overlay.nodes
        ]


class TestDeprecatedDefines:
    @pytest.mark.parametrize("old", ["star_define", "line_define", "tree_define"])
    def test_aliases_warn_but_work(self, sr3, old):
        protect_dict(sr3)
        with pytest.warns(DeprecationWarning, match=f"SR3.{old} is deprecated"):
            getattr(sr3, old)("app/state")
        # The policy still landed despite the warning.
        assert "app/state" in sr3._policies

    def test_define_does_not_warn(self, sr3, recwarn):
        protect_dict(sr3)
        sr3.define("app/state", "star")
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_deprecated_alias_still_recovers(self, sr3):
        owner, _ = protect_dict(sr3)
        with pytest.warns(DeprecationWarning):
            sr3.star_define("app/state", star_fanout=3)
        sr3.overlay.fail_node(owner)
        _, result = sr3.recover("app/state")
        assert result.mechanism == "star"
        assert result.detail["fanout_bits"] == 3


class TestSelectionResultEquality:
    def test_equal_to_member_and_string(self, sr3):
        choice = sr3.selection("a", "latency-sensitive", 8 * MB)
        assert choice == Mechanism.STAR
        assert choice == "star"
        assert choice != "line"
        assert choice != Mechanism.LINE

    def test_hash_consistent_with_both_equalities(self, sr3):
        choice = sr3.selection("a", "latency-sensitive", 8 * MB)
        assert hash(choice) == hash("star")
        assert hash(choice) == hash(Mechanism.STAR)

    def test_set_and_dict_membership(self, sr3):
        choice = sr3.selection("a", "latency-sensitive", 8 * MB)
        assert choice in {"star", "line"}
        assert choice in {Mechanism.STAR}
        assert {choice: 1}[Mechanism.STAR] == 1
        assert {choice: 1}["star"] == 1
        assert {Mechanism.STAR: 2}[choice] == 2
