"""Allocator equivalence: incremental max-min must match the global solve.

The incremental allocator re-runs water-filling only over the connected
component of the link graph touched by a mutation; ``allocator="global"``
is the escape hatch that forces the historical full solve. For any seed the
two must produce byte-identical flow completion times, telemetry timelines,
and trace output — that invariant is what makes the fast path safe.
"""

import json
import math
import random

import pytest

from repro.errors import NetworkError
from repro.obs.tracer import Tracer
from repro.sim.kernel import Simulator
from repro.sim.network import Network


def _trace_dump(tracer: Tracer) -> str:
    """Deterministic serialization of every span the run produced."""
    spans = []
    for span in tracer.spans:
        spans.append(
            {
                "name": span.name,
                "category": span.category,
                "start": span.start,
                "end": span.end,
                "attrs": {k: repr(v) for k, v in sorted(span.attrs.items())},
            }
        )
    return json.dumps(spans, sort_keys=True)


def _run_mixed_sequence(seed: int, allocator: str):
    """A randomized admit/abort/partition/bandwidth-change workload.

    Returns (completions, aborts, telemetry_json, trace_json) — everything
    observable about the run, serialized deterministically.
    """
    rng = random.Random(seed)
    tracer = Tracer(f"equiv-{seed}")
    sim = Simulator(tracer=tracer)
    net = Network(sim, allocator=allocator)
    hosts = [
        net.add_host(
            f"h{i}",
            up_bw=rng.choice([50.0, 100.0, 200.0, math.inf]),
            down_bw=rng.choice([50.0, 100.0, 200.0, math.inf]),
            latency=rng.choice([0.0, 0.001, 0.01]),
        )
        for i in range(8)
    ]
    completions = []
    aborts = []
    flows = []

    def start_transfer():
        src, dst = rng.sample(hosts, 2)
        if not (src.alive and dst.alive):
            return
        size = rng.uniform(10.0, 5000.0)
        tag = f"t{len(flows)}"
        flow = net.transfer(
            src,
            dst,
            size,
            on_complete=lambda f: completions.append((f.tag, sim.now)),
            on_abort=lambda f: aborts.append((f.tag, sim.now)),
            tag=tag,
        )
        flows.append(flow)

    for _ in range(30):
        sim.schedule(rng.uniform(0.0, 5.0), start_transfer)
    # Same-instant bursts exercise the coalesced settle path.
    burst_at = rng.uniform(0.5, 2.0)
    for _ in range(4):
        sim.schedule(burst_at, start_transfer)
    sim.schedule(
        rng.uniform(1.0, 3.0),
        lambda: flows and net.abort_flow(rng.choice(flows)),
    )
    sim.schedule(
        rng.uniform(1.0, 3.0),
        lambda: net.set_host_bandwidth(
            rng.choice(hosts), rng.uniform(20.0, 300.0), rng.uniform(20.0, 300.0)
        ),
    )
    sim.schedule(
        rng.uniform(1.5, 3.5),
        lambda: net.partition([h.name for h in hosts[:3]]),
    )
    sim.schedule(4.0, net.heal_partition)
    sim.schedule(
        rng.uniform(2.0, 4.0), lambda: net.fail_host(hosts[rng.randrange(8)])
    )
    sim.run_until_idle()
    telemetry = json.dumps(sim.metrics.dump(), sort_keys=True)
    return completions, aborts, telemetry, _trace_dump(tracer)


class TestAllocatorEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 23])
    def test_mixed_sequences_byte_identical(self, seed):
        inc = _run_mixed_sequence(seed, "incremental")
        ref = _run_mixed_sequence(seed, "global")
        assert inc[0] == ref[0]  # completion (tag, time) pairs, in order
        assert inc[1] == ref[1]  # abort (tag, time) pairs, in order
        assert inc[2] == ref[2]  # serialized telemetry timelines
        assert inc[3] == ref[3]  # serialized trace spans

    def test_component_merge_matches_global(self):
        """Two independent components merged by a bridging flow."""

        def run(allocator):
            sim = Simulator()
            net = Network(sim, allocator=allocator)
            a = net.add_host("a", up_bw=100.0, latency=0.0)
            b = net.add_host("b", down_bw=100.0, up_bw=80.0, latency=0.0)
            c = net.add_host("c", up_bw=60.0, latency=0.0)
            d = net.add_host("d", down_bw=60.0, latency=0.0)
            done = []
            # Two disjoint components: a->b and c->d.
            net.transfer(a, b, 400.0, on_complete=lambda f: done.append(("ab", sim.now)))
            net.transfer(c, d, 300.0, on_complete=lambda f: done.append(("cd", sim.now)))
            # At t=1 a bridge b->d couples them into one component.
            sim.schedule(
                1.0,
                lambda: net.transfer(
                    b, d, 200.0, on_complete=lambda f: done.append(("bd", sim.now))
                ),
            )
            sim.run_until_idle()
            return done, json.dumps(sim.metrics.dump(), sort_keys=True)

        assert run("incremental") == run("global")

    def test_untouched_component_keeps_exact_rate(self):
        """A mutation in one component must not perturb another's flows."""
        sim = Simulator()
        net = Network(sim, allocator="incremental")
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        c = net.add_host("c", up_bw=70.0, latency=0.0)
        d = net.add_host("d", down_bw=70.0, latency=0.0)
        done = {}
        net.transfer(a, b, 1000.0, on_complete=lambda f: done.update(ab=sim.now))
        net.transfer(c, d, 7000.0, on_complete=lambda f: done.update(cd=sim.now))
        # A second a->b flow at t=1 dirties only a/b's links.
        sim.schedule(
            1.0,
            lambda: net.transfer(
                a, b, 500.0, on_complete=lambda f: done.update(ab2=sim.now)
            ),
        )
        sim.run_until_idle()
        # c->d runs at its full 70 B/s throughout: 7000/70 = 100 s.
        assert done["cd"] == pytest.approx(100.0)
        # a->b flows share 100 B/s from t=1: ab has 900 left, ab2 is 500.
        assert done["ab2"] == pytest.approx(11.0)
        assert done["ab"] == pytest.approx(15.0)

    def test_unknown_allocator_rejected(self):
        with pytest.raises(NetworkError):
            Network(Simulator(), allocator="magic")

    def test_escape_hatch_attribute_is_live(self):
        """Flipping the attribute mid-run falls back to the full solve."""
        sim = Simulator()
        net = Network(sim)
        assert net.allocator == "incremental"
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        done = []
        net.transfer(a, b, 1000.0, on_complete=lambda f: done.append(sim.now))
        sim.schedule(2.0, lambda: setattr(net, "allocator", "global"))
        sim.run_until_idle()
        assert done == [pytest.approx(10.0)]
