"""Direct unit tests for the stateful bolt helpers."""

import pytest

from repro.errors import StreamRuntimeError
from repro.streaming.component import OutputCollector, TaskContext
from repro.streaming.stateful import AggregatingBolt, CountingBolt, StatefulBolt
from repro.streaming.tuples import StreamTuple


def prepared(bolt, component="b"):
    bolt.prepare(TaskContext(component, 0, 1))
    return bolt


def run(bolt, values, fields):
    collector = OutputCollector("b", bolt.declare_output_fields())
    bolt.execute(StreamTuple(values, fields, source="src"), collector)
    return collector.drain()


class TestStatefulBoltBase:
    def test_state_before_prepare_rejected(self):
        class Dummy(StatefulBolt):
            def declare_output_fields(self):
                return ("x",)

            def process(self, tuple_, collector):
                pass

        bolt = Dummy()
        with pytest.raises(StreamRuntimeError):
            _ = bolt.state
        with pytest.raises(StreamRuntimeError):
            _ = bolt.context

    def test_prepare_names_store_after_task(self):
        bolt = prepared(CountingBolt("w"), component="counter")
        assert bolt.state.name == "counter[0]/state"

    def test_attach_state_replaces_store(self):
        from repro.state.store import StateStore

        bolt = prepared(CountingBolt("w"))
        replacement = StateStore("other/state")
        replacement.put("x", 9)
        bolt.attach_state(replacement)
        assert bolt.state.get("x") == 9

    def test_prepare_preserves_attached_state(self):
        from repro.state.store import StateStore

        bolt = CountingBolt("w")
        store = StateStore("pre/state")
        store.put("kept", 1)
        bolt.attach_state(store)
        bolt.prepare(TaskContext("c", 0, 1))
        assert bolt.state.get("kept") == 1


class TestCountingBolt:
    def test_counts_accumulate_and_emit(self):
        bolt = prepared(CountingBolt("word"))
        out1 = run(bolt, ("apple",), ("word",))
        out2 = run(bolt, ("apple",), ("word",))
        assert out1[0].as_dict() == {"word": "apple", "count": 1}
        assert out2[0].as_dict() == {"word": "apple", "count": 2}
        assert bolt.state.get("apple") == 2

    def test_independent_keys(self):
        bolt = prepared(CountingBolt("word"))
        run(bolt, ("a",), ("word",))
        run(bolt, ("b",), ("word",))
        assert bolt.state.get("a") == 1
        assert bolt.state.get("b") == 1


class TestAggregatingBolt:
    def test_custom_reducer(self):
        bolt = prepared(
            AggregatingBolt(
                "symbol",
                lambda prev, t: max(prev or 0.0, t["price"]),
                value_field="max_price",
            )
        )
        run(bolt, ("X", 10.0), ("symbol", "price"))
        out = run(bolt, ("X", 7.0), ("symbol", "price"))
        assert out[0].as_dict() == {"symbol": "X", "max_price": 10.0}
        assert bolt.state.get("X") == 10.0

    def test_declares_key_and_value_fields(self):
        bolt = AggregatingBolt("k", lambda p, t: t, value_field="agg")
        assert tuple(bolt.declare_output_fields()) == ("k", "agg")

    def test_timestamp_propagated(self):
        bolt = prepared(AggregatingBolt("k", lambda p, t: 1))
        collector = OutputCollector("b", bolt.declare_output_fields())
        bolt.execute(
            StreamTuple(("x",), ("k",), source="s", timestamp=42.0), collector
        )
        assert collector.drain()[0].timestamp == 42.0
