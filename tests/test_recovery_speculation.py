"""Unit tests for speculative straggler mitigation (Sec. 6 future work)."""

import pytest

from repro.recovery.model import run_handles
from repro.recovery.speculation import SpeculationConfig, SpeculativeStarRecovery
from repro.recovery.star import StarRecovery
from repro.util.sizes import MB, mbit_per_s


def make_straggler(world, registered, shard_index=0, slow_mbit=1.0):
    """Throttle the uplink of one shard's primary provider."""
    provider = registered.plan.providers_for(shard_index)[0].node
    provider.host.up_bw = mbit_per_s(slow_mbit)
    return provider


def run_mechanism(world, mechanism, name="app/state"):
    registered = world.manager.states[name]
    replacement = world.fail_owner(name)
    handle = mechanism.start(world.ctx, registered.plan, replacement, name)
    return run_handles(world.sim, [handle])[0]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpeculationConfig(straggler_factor=1.0)
        with pytest.raises(ValueError):
            SpeculationConfig(min_wait=-1)
        with pytest.raises(ValueError):
            SpeculationConfig(reference_bandwidth=0)

    def test_deadline_scales_with_size(self):
        config = SpeculationConfig()
        assert config.deadline(64 * MB) > config.deadline(8 * MB)

    def test_deadline_floor(self):
        config = SpeculationConfig(min_wait=1.0)
        assert config.deadline(1) == 1.0


class TestSpeculativeRecovery:
    def test_no_straggler_no_speculation(self, world_factory):
        w = world_factory(link_mbit=1000)
        w.save_synthetic(size=16 * MB, shards=4)
        result = run_mechanism(w, SpeculativeStarRecovery())
        assert result.detail["speculations"] == 0
        assert result.duration > 0

    def test_straggler_triggers_speculation(self, world_factory):
        w = world_factory(link_mbit=1000)
        registered, _ = w.save_synthetic(size=32 * MB, shards=4, replicas=2)
        make_straggler(w, registered, slow_mbit=1.0)
        result = run_mechanism(w, SpeculativeStarRecovery())
        assert result.detail["speculations"] >= 1

    def test_speculation_beats_plain_star_under_straggler(self, world_factory):
        times = {}
        for name, mechanism in (
            ("plain", StarRecovery(fanout_bits=2)),
            ("speculative", SpeculativeStarRecovery()),
        ):
            w = world_factory(link_mbit=1000)
            registered, _ = w.save_synthetic(size=32 * MB, shards=4, replicas=2)
            make_straggler(w, registered, slow_mbit=1.0)
            times[name] = run_mechanism(w, mechanism).duration
        assert times["speculative"] < times["plain"]

    def test_comparable_without_straggler(self, world_factory):
        times = {}
        for name, mechanism in (
            ("plain", StarRecovery(fanout_bits=2)),
            ("speculative", SpeculativeStarRecovery()),
        ):
            w = world_factory(link_mbit=1000)
            w.save_synthetic(size=16 * MB, shards=4)
            times[name] = run_mechanism(w, mechanism).duration
        assert times["speculative"] == pytest.approx(times["plain"], rel=0.25)

    def test_recovers_even_when_all_replicas_slow(self, world_factory):
        w = world_factory(link_mbit=1000)
        registered, _ = w.save_synthetic(size=16 * MB, shards=4, replicas=2)
        for placed in registered.plan.for_shard(0):
            placed.node.host.up_bw = mbit_per_s(5.0)
        result = run_mechanism(w, SpeculativeStarRecovery())
        assert result.shards_recovered == 4

    def test_missing_shard_fails(self, world):
        registered, _ = world.save_synthetic(size=8 * MB, shards=4)
        for placed in registered.plan.for_shard(0):
            placed.node.drop_shard(placed.replica.key)
        replacement = world.fail_owner()
        handle = SpeculativeStarRecovery().start(
            world.ctx, registered.plan, replacement, "app/state"
        )
        from repro.errors import InsufficientShardsError

        with pytest.raises(InsufficientShardsError):
            handle.result

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            SpeculativeStarRecovery(fanout_bits=-1)
