"""Tests for the synchronous micro-batch engine (Spark-style model)."""

import random
from collections import Counter

import pytest

from repro.dht.overlay import Overlay
from repro.errors import StreamRuntimeError
from repro.recovery.manager import RecoveryManager
from repro.recovery.model import RecoveryContext
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.state.partitioner import merge_shards, partition_snapshot
from repro.streaming.microbatch import MicroBatchEngine, MicroBatchJob

SENTENCES = ["a b a", "c a b", "b b c", "a c c"] * 10


def wordcount_job(batch_size=4):
    job = MicroBatchJob("wc", batch_size=batch_size)
    (
        job.source(SENTENCES)
        .flat_map(str.split)
        .map(lambda w: (w, 1))
        .update_state_by_key("counts", lambda old, vals: (old or 0) + sum(vals))
    )
    return job


class TestJobConstruction:
    def test_batching(self):
        job = MicroBatchJob("j", batch_size=3)
        job.source(range(8))
        assert job.num_batches() == 3
        assert job.batch(0) == [0, 1, 2]
        assert job.batch(2) == [6, 7]

    def test_batch_bounds(self):
        job = MicroBatchJob("j", batch_size=3)
        job.source(range(3))
        with pytest.raises(StreamRuntimeError):
            job.batch(1)

    def test_single_source(self):
        job = MicroBatchJob("j", batch_size=1)
        job.source([1])
        with pytest.raises(StreamRuntimeError):
            job.source([2])

    def test_invalid_batch_size(self):
        with pytest.raises(StreamRuntimeError):
            MicroBatchJob("j", batch_size=0)

    def test_duplicate_state_name(self):
        job = MicroBatchJob("j", batch_size=1)
        stream = job.source([("a", 1)])
        stream.update_state_by_key("s", lambda o, v: v)
        with pytest.raises(StreamRuntimeError):
            stream.update_state_by_key("s", lambda o, v: v)


class TestTransformations:
    def run_job(self, build):
        job = MicroBatchJob("j", batch_size=100)
        build(job)
        engine = MicroBatchEngine(job)
        engine.run()
        return engine

    def test_map_filter(self):
        engine = self.run_job(
            lambda job: job.source(range(10)).map(lambda x: x * 2).filter(lambda x: x > 10)
        )
        assert engine.outputs[0] == [12, 14, 16, 18]

    def test_flat_map(self):
        engine = self.run_job(lambda job: job.source(["x y", "z"]).flat_map(str.split))
        assert engine.outputs[0] == ["x", "y", "z"]

    def test_reduce_by_key_per_batch(self):
        job = MicroBatchJob("j", batch_size=2)
        job.source([("a", 1), ("a", 2), ("a", 10)]).reduce_by_key(lambda x, y: x + y)
        engine = MicroBatchEngine(job)
        engine.run()
        # Batch 1: a->3; batch 2: a->10 (stateless across batches).
        assert engine.outputs == [[("a", 3)], [("a", 10)]]

    def test_reduce_by_key_type_check(self):
        job = MicroBatchJob("j", batch_size=2)
        job.source([1, 2]).reduce_by_key(lambda x, y: x + y)
        with pytest.raises(StreamRuntimeError):
            MicroBatchEngine(job).run()


class TestStatefulProcessing:
    def test_wordcount_state_accumulates(self):
        engine = MicroBatchEngine(wordcount_job())
        engine.run()
        expected = Counter(w for s in SENTENCES for w in s.split())
        assert dict(engine.state_store("counts").items()) == dict(expected)

    def test_partial_run_partial_state(self):
        engine = MicroBatchEngine(wordcount_job(batch_size=4))
        engine.run(max_batches=5)
        expected = Counter(w for s in SENTENCES[:20] for w in s.split())
        assert dict(engine.state_store("counts").items()) == dict(expected)
        assert engine.batches_processed == 5

    def test_run_past_end_rejected(self):
        engine = MicroBatchEngine(wordcount_job())
        engine.run()
        with pytest.raises(StreamRuntimeError):
            engine.run_batch()

    def test_unknown_state_rejected(self):
        engine = MicroBatchEngine(wordcount_job())
        with pytest.raises(StreamRuntimeError):
            engine.state_store("ghost")


class TestLineageRecomputation:
    def test_recompute_matches_original(self):
        engine = MicroBatchEngine(wordcount_job())
        engine.run(max_batches=6)
        replica = engine.recompute_from_lineage()
        assert dict(replica.state_store("counts").items()) == dict(
            engine.state_store("counts").items()
        )

    def test_recompute_cost_grows_with_lineage(self):
        engine = MicroBatchEngine(wordcount_job())
        engine.run()
        short = engine.recompute_from_lineage(up_to_batch=2)
        full = engine.recompute_from_lineage()
        assert full.batches_processed > short.batches_processed

    def test_recompute_beyond_source_rejected(self):
        engine = MicroBatchEngine(wordcount_job())
        with pytest.raises(StreamRuntimeError):
            engine.recompute_from_lineage(up_to_batch=10_000)


class TestSR3Protection:
    def test_microbatch_state_recovers_through_sr3(self):
        """The micro-batch model's state rides the same SR3 machinery."""
        sim = Simulator()
        net = Network(sim)
        overlay = Overlay(sim, net, rng=random.Random(6))
        overlay.build(64)
        manager = RecoveryManager(RecoveryContext(sim, net, overlay))

        engine = MicroBatchEngine(wordcount_job())
        engine.run(max_batches=6)
        store = engine.state_store("counts")
        snapshot = store.snapshot(sim.now)
        shards = partition_snapshot(snapshot, 4)
        owner = overlay.nodes[0]
        manager.register(owner, shards, 2)
        manager.save(store.name)
        sim.run_until_idle()

        # The driver node dies; state comes back from the overlay, not by
        # replaying the lineage.
        overlay.fail_node(owner)
        handle = manager.recover(store.name)
        manager.run([handle])
        plan = manager.states[store.name].plan
        recovered = merge_shards(plan.available_shards())

        fresh = MicroBatchEngine(wordcount_job())
        from repro.state.store import StateStore

        new_store = StateStore(store.name)
        new_store.restore(recovered)
        fresh.attach_state("counts", new_store)
        fresh.batches_processed = 6
        fresh.run()
        expected = Counter(w for s in SENTENCES for w in s.split())
        assert dict(fresh.state_store("counts").items()) == dict(expected)
