"""Unit tests for the max-min fair flow-level network."""


import pytest

from repro.errors import NetworkError
from repro.sim.kernel import Simulator
from repro.sim.network import Network, RemoteStorage


def make_net():
    sim = Simulator()
    return sim, Network(sim)


class TestHosts:
    def test_duplicate_names_rejected(self):
        _, net = make_net()
        net.add_host("a")
        with pytest.raises(NetworkError):
            net.add_host("a")

    def test_nonpositive_bandwidth_rejected(self):
        _, net = make_net()
        with pytest.raises(NetworkError):
            net.add_host("a", up_bw=0)

    def test_negative_latency_rejected(self):
        _, net = make_net()
        with pytest.raises(NetworkError):
            net.add_host("a", latency=-1)


class TestSingleFlow:
    def test_transfer_time_is_size_over_bandwidth(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        done = []
        net.transfer(a, b, 1000.0, on_complete=lambda f: done.append(sim.now))
        sim.run_until_idle()
        assert done == [pytest.approx(10.0)]

    def test_latency_delays_admission(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.25)
        b = net.add_host("b", down_bw=100.0, latency=0.25)
        done = []
        net.transfer(a, b, 100.0, on_complete=lambda f: done.append(sim.now))
        sim.run_until_idle()
        assert done == [pytest.approx(1.5)]

    def test_infinite_bandwidth_completes_immediately(self):
        sim, net = make_net()
        a = net.add_host("a", latency=0.0)
        b = net.add_host("b", latency=0.0)
        done = []
        net.transfer(a, b, 10**9, on_complete=lambda f: done.append(sim.now))
        sim.run_until_idle()
        assert done == [pytest.approx(0.0)]

    def test_zero_byte_transfer(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=10.0, latency=0.0)
        b = net.add_host("b", down_bw=10.0, latency=0.0)
        done = []
        net.transfer(a, b, 0.0, on_complete=lambda f: done.append(sim.now))
        sim.run_until_idle()
        assert len(done) == 1

    def test_negative_size_rejected(self):
        _, net = make_net()
        a = net.add_host("a")
        b = net.add_host("b")
        with pytest.raises(NetworkError):
            net.transfer(a, b, -1.0)

    def test_byte_accounting(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        net.transfer(a, b, 500.0)
        sim.run_until_idle()
        assert a.bytes_sent == pytest.approx(500.0)
        assert b.bytes_received == pytest.approx(500.0)
        assert net.total_bytes == pytest.approx(500.0)
        assert net.completed_flows == 1


class TestFairSharing:
    def test_destination_bottleneck_shared_equally(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=1000.0, latency=0.0)
        c = net.add_host("c", up_bw=1000.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        done = {}
        net.transfer(a, b, 500.0, on_complete=lambda f: done.update(a=sim.now))
        net.transfer(c, b, 500.0, on_complete=lambda f: done.update(c=sim.now))
        sim.run_until_idle()
        # Both share 100 B/s -> 50 each -> both finish at 10 s.
        assert done["a"] == pytest.approx(10.0)
        assert done["c"] == pytest.approx(10.0)

    def test_released_capacity_speeds_up_remaining_flow(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        c = net.add_host("c", up_bw=50.0, latency=0.0)
        done = {}
        net.transfer(a, b, 100.0, on_complete=lambda f: done.update(ab=sim.now))
        net.transfer(c, b, 50.0, on_complete=lambda f: done.update(cb=sim.now))
        sim.run_until_idle()
        # Shares: 50/50 until cb finishes at 1.0; then ab gets 100.
        assert done["cb"] == pytest.approx(1.0)
        assert done["ab"] == pytest.approx(1.5)

    def test_source_bottleneck(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=1000.0, latency=0.0)
        c = net.add_host("c", down_bw=1000.0, latency=0.0)
        done = {}
        net.transfer(a, b, 100.0, on_complete=lambda f: done.update(b=sim.now))
        net.transfer(a, c, 100.0, on_complete=lambda f: done.update(c=sim.now))
        sim.run_until_idle()
        assert done["b"] == pytest.approx(2.0)
        assert done["c"] == pytest.approx(2.0)

    def test_asymmetric_up_down(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=10.0, down_bw=1000.0, latency=0.0)
        b = net.add_host("b", up_bw=1000.0, down_bw=10.0, latency=0.0)
        done = []
        net.transfer(a, b, 100.0, on_complete=lambda f: done.append(sim.now))
        sim.run_until_idle()
        assert done == [pytest.approx(10.0)]

    def test_unrelated_flows_do_not_interfere(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        c = net.add_host("c", up_bw=100.0, latency=0.0)
        d = net.add_host("d", down_bw=100.0, latency=0.0)
        done = {}
        net.transfer(a, b, 100.0, on_complete=lambda f: done.update(ab=sim.now))
        net.transfer(c, d, 100.0, on_complete=lambda f: done.update(cd=sim.now))
        sim.run_until_idle()
        assert done["ab"] == pytest.approx(1.0)
        assert done["cd"] == pytest.approx(1.0)


class TestFailures:
    def test_failed_host_aborts_flows(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=10.0, latency=0.0)
        b = net.add_host("b", down_bw=10.0, latency=0.0)
        aborted = []
        net.transfer(a, b, 1000.0, on_abort=lambda f: aborted.append(f))
        sim.schedule(1.0, lambda: net.fail_host(b))
        sim.run_until_idle()
        assert len(aborted) == 1
        assert aborted[0].aborted

    def test_transfer_to_dead_host_rejected(self):
        _, net = make_net()
        a = net.add_host("a")
        b = net.add_host("b")
        net.fail_host(b)
        with pytest.raises(NetworkError):
            net.transfer(a, b, 10.0)

    def test_abort_flow_api(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=10.0, latency=0.0)
        b = net.add_host("b", down_bw=10.0, latency=0.0)
        events = {"done": 0, "aborted": 0}
        flow = net.transfer(
            a, b, 1000.0,
            on_complete=lambda f: events.__setitem__("done", 1),
            on_abort=lambda f: events.__setitem__("aborted", 1),
        )
        sim.schedule(1.0, lambda: net.abort_flow(flow))
        sim.run_until_idle()
        assert events == {"done": 0, "aborted": 1}

    def test_recover_host_allows_new_transfers(self):
        sim, net = make_net()
        a = net.add_host("a", latency=0.0)
        b = net.add_host("b", latency=0.0)
        net.fail_host(b)
        net.recover_host(b)
        done = []
        net.transfer(a, b, 1.0, on_complete=lambda f: done.append(1))
        sim.run_until_idle()
        assert done == [1]


class TestControlMessages:
    def test_delivery_after_latency(self):
        sim, net = make_net()
        a = net.add_host("a", latency=0.1)
        b = net.add_host("b", latency=0.2)
        seen = []
        net.send_control(a, b, 48, on_delivery=lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [pytest.approx(0.3)]

    def test_bytes_counted(self):
        _, net = make_net()
        a = net.add_host("a")
        b = net.add_host("b")
        net.send_control(a, b, 100)
        assert a.control_bytes_sent == 100
        assert b.control_bytes_received == 100
        assert net.total_control_bytes == 100

    def test_negative_size_rejected(self):
        _, net = make_net()
        a = net.add_host("a")
        b = net.add_host("b")
        with pytest.raises(NetworkError):
            net.send_control(a, b, -1)

    def test_no_delivery_to_dead_host(self):
        sim, net = make_net()
        a = net.add_host("a")
        b = net.add_host("b")
        net.fail_host(b)
        seen = []
        net.send_control(a, b, 10, on_delivery=lambda: seen.append(1))
        sim.run_until_idle()
        assert seen == []


class TestRemoteStorage:
    def test_request_overhead_accumulates(self):
        storage = RemoteStorage("s", up_bw=100.0, down_bw=100.0, request_overhead=0.05)
        assert storage.charge_request() == 0.05
        assert storage.charge_request() == 0.05
        assert storage.requests_served == 2

    def test_negative_overhead_rejected(self):
        with pytest.raises(NetworkError):
            RemoteStorage("s", up_bw=1.0, down_bw=1.0, request_overhead=-0.1)
