"""Unit tests for spanning trees and Scribe multicast."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.dht.overlay import Overlay
from repro.errors import MulticastError
from repro.multicast.scribe import ScribeSystem
from repro.multicast.tree import (
    SpanningTree,
    build_balanced_tree,
    build_tree,
    build_tree_with_depth,
    fanout_for_depth,
)
from repro.sim.kernel import Simulator
from repro.sim.network import Network


def build_overlay(count, seed=0):
    sim = Simulator()
    net = Network(sim)
    overlay = Overlay(sim, net, rng=random.Random(seed))
    overlay.build(count)
    return overlay


class TestSpanningTree:
    def test_root_only(self):
        overlay = build_overlay(5)
        tree = SpanningTree(overlay.nodes[0])
        assert len(tree) == 1
        assert tree.height() == 0
        assert tree.leaves() == [overlay.nodes[0]]

    def test_add_and_navigate(self):
        overlay = build_overlay(5)
        a, b, c = overlay.nodes[:3]
        tree = SpanningTree(a)
        tree.add(b, a)
        tree.add(c, b)
        assert tree.parent(c) is b
        assert tree.children(a) == [b]
        assert tree.depth_of(c) == 2
        assert tree.height() == 2

    def test_duplicate_add_rejected(self):
        overlay = build_overlay(3)
        a, b = overlay.nodes[:2]
        tree = SpanningTree(a)
        tree.add(b, a)
        with pytest.raises(MulticastError):
            tree.add(b, a)

    def test_unknown_parent_rejected(self):
        overlay = build_overlay(3)
        a, b, c = overlay.nodes[:3]
        tree = SpanningTree(a)
        with pytest.raises(MulticastError):
            tree.add(b, c)

    def test_bfs_and_levels(self):
        overlay = build_overlay(7)
        nodes = overlay.nodes
        tree = build_tree(nodes[0], nodes[1:7], fanout=2)
        order = list(tree.bfs())
        assert order[0] is nodes[0]
        levels = tree.levels()
        assert levels[0] == [nodes[0]]
        assert sum(len(level) for level in levels) == 7

    def test_validate_passes_for_built_tree(self):
        overlay = build_overlay(20)
        tree = build_tree(overlay.nodes[0], overlay.nodes[1:], fanout=3)
        tree.validate()


class TestBuildTree:
    def test_fanout_respected(self):
        overlay = build_overlay(16)
        tree = build_tree(overlay.nodes[0], overlay.nodes[1:], fanout=2)
        assert tree.max_fanout() <= 2
        assert len(tree) == 16

    def test_balanced_tree_uses_power_of_two(self):
        overlay = build_overlay(16)
        tree = build_balanced_tree(overlay.nodes[0], overlay.nodes[1:], fanout_bits=2)
        assert tree.max_fanout() <= 4

    def test_larger_fanout_is_shallower(self):
        overlay = build_overlay(40)
        narrow = build_tree(overlay.nodes[0], overlay.nodes[1:], fanout=2)
        wide = build_tree(overlay.nodes[0], overlay.nodes[1:], fanout=8)
        assert wide.height() < narrow.height()

    def test_chain_with_fanout_one(self):
        overlay = build_overlay(6)
        tree = build_tree(overlay.nodes[0], overlay.nodes[1:], fanout=1)
        assert tree.height() == 5
        assert tree.max_fanout() == 1

    def test_depth_cap_honoured(self):
        overlay = build_overlay(30)
        tree = build_tree(overlay.nodes[0], overlay.nodes[1:], fanout=2, max_depth=3)
        assert tree.height() <= 3
        assert len(tree) == 30

    def test_invalid_fanout(self):
        overlay = build_overlay(2)
        with pytest.raises(MulticastError):
            build_tree(overlay.nodes[0], overlay.nodes[1:], fanout=0)


class TestDepthTargeting:
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=20),
    )
    def test_fanout_for_depth_capacity(self, members, depth):
        fanout = fanout_for_depth(members, depth)
        if fanout == 1:
            capacity = depth
        else:
            capacity = (fanout ** (depth + 1) - fanout) // (fanout - 1)
        assert capacity >= members
        if fanout > 1:
            smaller = fanout - 1
            if smaller == 1:
                smaller_capacity = depth
            else:
                smaller_capacity = (smaller ** (depth + 1) - smaller) // (smaller - 1)
            assert smaller_capacity < members

    def test_deeper_target_builds_deeper_tree(self):
        overlay = build_overlay(33)
        shallow = build_tree_with_depth(overlay.nodes[0], overlay.nodes[1:], depth=2)
        deep = build_tree_with_depth(overlay.nodes[0], overlay.nodes[1:], depth=16)
        assert deep.height() > shallow.height()

    def test_exact_chain_depth(self):
        overlay = build_overlay(9)
        tree = build_tree_with_depth(overlay.nodes[0], overlay.nodes[1:], depth=8)
        assert tree.height() == 8


class TestScribe:
    def test_create_topic_root_is_responsible(self):
        overlay = build_overlay(50, seed=1)
        scribe = ScribeSystem(overlay)
        topic = scribe.create_topic("alerts")
        assert topic.root.node_id == overlay.responsible_node(topic.topic_id).node_id

    def test_create_is_idempotent(self):
        overlay = build_overlay(20)
        scribe = ScribeSystem(overlay)
        assert scribe.create_topic("t") is scribe.create_topic("t")

    def test_subscribe_builds_route_union_tree(self):
        overlay = build_overlay(80, seed=2)
        scribe = ScribeSystem(overlay)
        scribe.create_topic("t")
        subscribers = overlay.nodes[:10]
        for node in subscribers:
            scribe.subscribe("t", node)
        topic = scribe.topics["t"]
        topic.tree.validate()
        assert all(node in topic.tree for node in subscribers)
        assert topic.subscribers == set(subscribers)

    def test_publish_reaches_all_members(self):
        overlay = build_overlay(60, seed=3)
        scribe = ScribeSystem(overlay)
        scribe.create_topic("t")
        for node in overlay.nodes[:8]:
            scribe.subscribe("t", node)
        depths = scribe.publish("t", payload_bytes=128)
        topic = scribe.topics["t"]
        assert set(depths) == set(topic.tree.members())
        assert depths[topic.root] == 0

    def test_publish_unknown_topic(self):
        overlay = build_overlay(10)
        scribe = ScribeSystem(overlay)
        with pytest.raises(MulticastError):
            scribe.publish("nope", 10)

    def test_unsubscribe_keeps_tree(self):
        overlay = build_overlay(40, seed=4)
        scribe = ScribeSystem(overlay)
        scribe.create_topic("t")
        node = overlay.nodes[5]
        scribe.subscribe("t", node)
        scribe.unsubscribe("t", node)
        assert node not in scribe.topics["t"].subscribers

    def test_repair_after_root_failure(self):
        overlay = build_overlay(60, seed=5)
        scribe = ScribeSystem(overlay)
        topic = scribe.create_topic("t")
        subscribers = [n for n in overlay.nodes[:10] if n is not topic.root]
        for node in subscribers:
            scribe.subscribe("t", node)
        overlay.fail_node(topic.root)
        scribe.repair("t")
        repaired = scribe.topics["t"]
        assert repaired.root.alive
        repaired.tree.validate()
        assert all(node in repaired.tree for node in subscribers if node.alive)
