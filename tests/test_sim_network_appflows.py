"""App-flow interference model: long-running demand-capped max-min flows."""

import math

import pytest

from repro.errors import NetworkError
from repro.sim.kernel import Simulator
from repro.sim.network import Network


def make_net():
    sim = Simulator()
    return sim, Network(sim)


class TestOpenAppFlow:
    def test_app_flow_is_long_running(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        flow = net.open_app_flow(a, b, demand=40.0)
        sim.run_until_idle()
        assert not flow.aborted
        assert flow in net.app_flows()
        assert flow.rate == pytest.approx(40.0)

    def test_elastic_app_flow_splits_fairly(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        net.open_app_flow(a, b, demand=math.inf)
        done = []
        net.transfer(a, b, 500.0, on_complete=lambda f: done.append(sim.now))
        sim.run_until_idle()
        # The transfer gets half of the 100 B/s link: 500 B in 10 s.
        assert done == [pytest.approx(10.0)]

    def test_demand_cap_returns_surplus_to_transfers(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        net.open_app_flow(a, b, demand=25.0)
        done = []
        net.transfer(a, b, 750.0, on_complete=lambda f: done.append(sim.now))
        sim.run_until_idle()
        # The app flow saturates at 25 B/s; the transfer runs at 75 B/s.
        assert done == [pytest.approx(10.0)]

    def test_invalid_demands_rejected(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0)
        b = net.add_host("b", down_bw=100.0)
        inf_a = net.add_host("inf-a")
        inf_b = net.add_host("inf-b")
        with pytest.raises(NetworkError):
            net.open_app_flow(a, b, demand=0.0)
        with pytest.raises(NetworkError):
            net.open_app_flow(a, b, demand=-5.0)
        # An elastic flow on an uncapped path would absorb infinite rate.
        with pytest.raises(NetworkError):
            net.open_app_flow(inf_a, inf_b, demand=math.inf)

    def test_dead_endpoint_rejected(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0)
        b = net.add_host("b", down_bw=100.0)
        net.fail_host(b)
        with pytest.raises(NetworkError):
            net.open_app_flow(a, b, demand=10.0)


class TestSetFlowDemand:
    def test_demand_change_reallocates(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        flow = net.open_app_flow(a, b, demand=80.0)
        done = []
        net.transfer(a, b, 600.0, on_complete=lambda f: done.append(sim.now))

        def shrink():
            net.set_flow_demand(flow, 10.0)

        sim.schedule(5.0, shrink)
        sim.run_until_idle()
        # 5 s at the 50/50 split (250 B moved), then 350 B at 90 B/s.
        assert done == [pytest.approx(5.0 + 350.0 / 90.0)]

    def test_only_app_flows_accept_demand(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        flow = net.transfer(a, b, 1000.0)
        with pytest.raises(NetworkError):
            net.set_flow_demand(flow, 10.0)
        sim.run_until_idle()


class TestCloseAppFlow:
    def test_close_returns_bandwidth(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0, latency=0.0)
        b = net.add_host("b", down_bw=100.0, latency=0.0)
        flow = net.open_app_flow(a, b, demand=math.inf)
        done = []
        net.transfer(a, b, 750.0, on_complete=lambda f: done.append(sim.now))
        sim.schedule(5.0, lambda: net.close_app_flow(flow))
        sim.run_until_idle()
        # 5 s at 50 B/s, then the remaining 500 B at the full 100 B/s.
        assert done == [pytest.approx(10.0)]
        assert flow.aborted
        assert net.app_flows() == []

    def test_close_does_not_fire_on_abort(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0)
        b = net.add_host("b", down_bw=100.0)
        aborted = []
        flow = net.open_app_flow(a, b, demand=10.0, on_abort=aborted.append)
        sim.run_until_idle()
        net.close_app_flow(flow)
        assert aborted == []
        # Idempotent: closing again is a no-op.
        net.close_app_flow(flow)

    def test_host_failure_aborts_app_flows(self):
        sim, net = make_net()
        a = net.add_host("a", up_bw=100.0)
        b = net.add_host("b", down_bw=100.0)
        aborted = []
        flow = net.open_app_flow(a, b, demand=10.0, on_abort=aborted.append)
        sim.run_until_idle()
        net.fail_host(b)
        assert flow.aborted
        assert aborted == [flow]


class TestQuiescentEquivalence:
    """With zero app flows the allocator's float-op sequence is untouched.

    An app flow in a *disconnected* component must not perturb transfers
    elsewhere: the incremental allocator only recomputes the dirtied
    component, and the demand-capped round is skipped entirely for
    all-elastic components. Admitting the app flow after the transfers
    keeps their admission sequence numbers identical, so every float
    accumulates in the same order and completion times match bit for bit.
    """

    @staticmethod
    def _run(with_remote_app_flow: bool):
        sim = Simulator()
        net = Network(sim)
        hosts = [
            net.add_host(f"h{i}", up_bw=100.0 + 7.0 * i, down_bw=90.0 + 11.0 * i, latency=0.0)
            for i in range(6)
        ]
        done = {}
        sizes = [830.0, 411.0, 557.0, 1290.0, 95.0]
        for i, size in enumerate(sizes):
            src = hosts[i % 3]
            dst = hosts[3 + (i + 1) % 3]
            net.transfer(
                src, dst, size, on_complete=lambda f, i=i: done.setdefault(i, sim.now)
            )
        if with_remote_app_flow:
            far_a = net.add_host("far-a", up_bw=50.0, latency=0.0)
            far_b = net.add_host("far-b", down_bw=50.0, latency=0.0)
            net.open_app_flow(far_a, far_b, demand=20.0)
        sim.run_until_idle()
        return done

    def test_disconnected_app_flow_is_byte_invisible(self):
        quiet = self._run(False)
        loaded = self._run(True)
        assert quiet == loaded  # exact float equality, not approx
