"""Tests for tree recovery running over real Scribe topic trees (Sec. 4)."""

import pytest

from repro.multicast.scribe import ScribeSystem
from repro.recovery.model import run_handles
from repro.recovery.tree import TreeRecovery
from repro.util.sizes import MB


def recover_with_scribe(world, name="app/state"):
    scribe = ScribeSystem(world.overlay)
    registered = world.manager.states[name]
    replacement = world.fail_owner(name)
    mechanism = TreeRecovery(fanout_bits=1, sub_shards=8, scribe=scribe)
    handle = mechanism.start(world.ctx, registered.plan, replacement, name)
    return scribe, run_handles(world.sim, [handle])[0]


class TestScribeBackedTree:
    def test_completes_with_correct_totals(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        w.save_synthetic(size=32 * MB, shards=4)
        scribe, result = recover_with_scribe(w)
        assert result.mechanism == "tree"
        assert result.state_bytes == pytest.approx(32 * MB)
        assert result.shards_recovered == 4

    def test_creates_one_topic_per_shard(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        w.save_synthetic(size=16 * MB, shards=4)
        scribe, _ = recover_with_scribe(w)
        assert len(scribe.topics) == 4
        assert all(name.startswith("sr3/app/state/") for name in scribe.topics)

    def test_all_members_joined_their_topic(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        w.save_synthetic(size=16 * MB, shards=2)
        scribe, _ = recover_with_scribe(w)
        for topic in scribe.topics.values():
            topic.tree.validate()
            assert topic.subscribers <= set(topic.tree.members())
            assert len(topic.subscribers) >= 2

    def test_scribe_join_traffic_charged(self, world_factory):
        w = world_factory(num_nodes=128, placement="hash")
        w.save_synthetic(size=16 * MB, shards=2)
        scribe, _ = recover_with_scribe(w)
        assert scribe.control_messages_sent > 0

    def test_comparable_latency_to_direct_tree(self, world_factory):
        w1 = world_factory(num_nodes=128, placement="hash")
        w1.save_synthetic(size=32 * MB, shards=4)
        _, scribe_result = recover_with_scribe(w1)

        w2 = world_factory(num_nodes=128, placement="hash")
        w2.save_synthetic(size=32 * MB, shards=4)
        registered = w2.manager.states["app/state"]
        replacement = w2.fail_owner()
        direct = TreeRecovery(fanout_bits=1, sub_shards=8).start(
            w2.ctx, registered.plan, replacement, "app/state"
        )
        direct_result = run_handles(w2.sim, [direct])[0]
        # Same order of magnitude; Scribe trees may be a little deeper.
        assert scribe_result.duration < 3 * direct_result.duration
