"""Tests for the chaos campaign runner and resilience report."""

import json

import pytest

from repro.chaos import (
    SCENARIOS,
    SR3_MECHANISMS,
    CrashWave,
    ResilienceReport,
    Scenario,
    ScenarioOutcome,
    make_mechanism,
    run_campaign,
    run_scenario,
    streaming_probe,
)
from repro.errors import SimulationError

SMALL_CRASH = Scenario(
    name="small-crash",
    num_nodes=16,
    num_states=1,
    state_mb=4.0,
    injections=(CrashWave(at=3.0, count=1, victims="owners"),),
    mechanisms=("star", "checkpointing"),
)


class TestMechanismFactory:
    def test_all_sr3_mechanisms_instantiate(self):
        for name in SR3_MECHANISMS:
            # Speculation self-describes as "star+speculation".
            assert name in make_mechanism(name).name

    def test_checkpointing_is_the_baseline(self):
        assert make_mechanism("checkpointing") is None

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(SimulationError, match="unknown mechanism"):
            make_mechanism("raft")


class TestRunScenario:
    def test_simple_crash_survives_under_star(self):
        outcome = run_scenario(SMALL_CRASH, "star")
        assert outcome.status == "survived"
        assert outcome.recovered == 1
        assert outcome.expected == 1
        assert outcome.crashes == 1
        assert outcome.errors == []
        assert outcome.max_recovery_s > 0

    def test_checkpointing_baseline_recovers_too(self):
        outcome = run_scenario(SMALL_CRASH, "checkpointing")
        assert outcome.status == "survived"
        assert outcome.recovered == 1

    @pytest.mark.parametrize("mechanism", SR3_MECHANISMS)
    def test_recrash_restarts_every_mechanism(self, mechanism):
        # The acceptance scenario: the replacement dies mid-recovery, the
        # mechanism surfaces a clean RecoveryError, and the engine restarts
        # the recovery onto a fresh replacement.
        outcome = run_scenario(SCENARIOS["mid-recovery-recrash"], mechanism)
        assert outcome.status == "degraded"
        assert outcome.restarts >= 1
        assert outcome.recovered == 1
        assert outcome.errors == []


class TestRunCampaign:
    def test_sweep_produces_one_outcome_per_cell(self):
        report = run_campaign(scenarios=[SMALL_CRASH])
        assert len(report.outcomes) == 2
        assert report.matrix() == {
            "small-crash": {"star": "survived", "checkpointing": "survived"}
        }
        counts = report.counts()
        assert counts["survived"] == 2
        assert counts["failed"] == 0

    def test_mechanism_override(self):
        report = run_campaign(scenarios=[SMALL_CRASH], mechanisms=["star"])
        assert [o.mechanism for o in report.outcomes] == ["star"]

    def test_same_seed_reports_are_byte_identical(self):
        first = run_campaign(scenarios=[SMALL_CRASH]).to_json()
        second = run_campaign(scenarios=[SMALL_CRASH]).to_json()
        assert first == second

    def test_unknown_campaign_rejected(self):
        with pytest.raises(SimulationError, match="unknown campaign"):
            run_campaign("nope")


class TestResilienceReport:
    def make_report(self):
        return ResilienceReport(
            campaign="t",
            outcomes=[
                ScenarioOutcome("s1", "star", "survived"),
                ScenarioOutcome("s1", "tree", "degraded"),
                ScenarioOutcome("s2", "star", "failed"),
            ],
        )

    def test_json_is_deterministic_and_parseable(self):
        report = self.make_report()
        data = json.loads(report.to_json())
        assert data["campaign"] == "t"
        assert data["summary"] == {"survived": 1, "degraded": 1, "failed": 1}
        assert data["matrix"]["s1"]["tree"] == "degraded"
        assert len(data["outcomes"]) == 3

    def test_format_matrix_renders_every_cell(self):
        text = self.make_report().format_matrix()
        lines = text.splitlines()
        assert lines[0].split() == ["scenario", "star", "tree"]
        assert "survived" in text
        assert "degraded" in text
        assert "survived=1 degraded=1 failed=1" in lines[-1]
        # s2 was never swept under tree: the cell renders as "-".
        assert [cell for cell in lines[2].split()] == ["s2", "failed", "-"]


class TestStreamingProbe:
    def test_wordcount_recovers_byte_identical_state(self):
        outcome = streaming_probe(seed=0, num_nodes=16)
        assert outcome.status == "survived"
        assert outcome.recovered == outcome.expected > 0
        assert outcome.errors == []
