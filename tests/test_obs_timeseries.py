"""The continuous telemetry layer: series buffers and the pipeline."""

import pytest

from repro.errors import ConfigError
from repro.obs import Tracer
from repro.obs.timeseries import SeriesBuffer, TelemetryConfig, TelemetryPipeline
from repro.sim import Simulator


class TestSeriesBuffer:
    def test_keeps_points_in_order(self):
        buf = SeriesBuffer("s")
        buf.append(1.0, 10.0)
        buf.append(2.0, 20.0)
        assert buf.points() == [(1.0, 10.0), (2.0, 20.0)]
        assert buf.last() == (2.0, 20.0)
        assert len(buf) == 2

    def test_rejects_time_travel(self):
        buf = SeriesBuffer("s")
        buf.append(5.0, 1.0)
        with pytest.raises(ConfigError):
            buf.append(4.0, 2.0)
        # Same-instant appends are allowed (distinct samples, one tick).
        buf.append(5.0, 3.0)
        assert len(buf) == 2

    def test_retention_ring_drops_oldest(self):
        buf = SeriesBuffer("s", retention=3)
        for i in range(5):
            buf.append(float(i), float(i))
        assert buf.points() == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]

    def test_downsample_last(self):
        buf = SeriesBuffer("s", resolution=1.0, agg="last")
        buf.append(0.2, 1.0)
        buf.append(0.8, 2.0)
        buf.append(1.1, 3.0)
        assert buf.points() == [(0.0, 2.0), (1.0, 3.0)]

    def test_downsample_max_and_mean(self):
        hi = SeriesBuffer("s", resolution=1.0, agg="max")
        for t, v in ((0.1, 1.0), (0.5, 9.0), (0.9, 3.0)):
            hi.append(t, v)
        assert hi.points() == [(0.0, 9.0)]
        avg = SeriesBuffer("s", resolution=1.0, agg="mean")
        for t, v in ((0.1, 1.0), (0.5, 2.0), (0.9, 3.0)):
            avg.append(t, v)
        assert avg.points() == [(0.0, 2.0)]

    def test_window_is_left_open_right_closed(self):
        buf = SeriesBuffer("s")
        for t in (1.0, 2.0, 3.0, 4.0):
            buf.append(t, t)
        assert buf.values_in(1.0, 3.0) == [2.0, 3.0]
        assert buf.window(3.0, 10.0) == [(4.0, 4.0)]
        assert buf.values_in(10.0, 20.0) == []

    def test_validation(self):
        with pytest.raises(ConfigError):
            SeriesBuffer("s", retention=0)
        with pytest.raises(ConfigError):
            SeriesBuffer("s", resolution=-1.0)
        with pytest.raises(ConfigError):
            SeriesBuffer("s", agg="median")
        with pytest.raises(ConfigError):
            SeriesBuffer("s", kind="histogram")

    def test_to_dict(self):
        buf = SeriesBuffer("s", kind="rate")
        buf.append(1.0, 2.0)
        assert buf.to_dict() == {
            "name": "s",
            "kind": "rate",
            "points": [[1.0, 2.0]],
        }


class TestTelemetryConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(interval=0.0)
        with pytest.raises(ConfigError):
            TelemetryConfig(retention=0)
        with pytest.raises(ConfigError):
            TelemetryConfig(resolution=-0.1)
        with pytest.raises(ConfigError):
            TelemetryConfig(histogram_window=0.0)
        with pytest.raises(ConfigError):
            TelemetryConfig(histogram_percentiles=(50.0, 101.0))


class TestTelemetryPipeline:
    def test_counters_become_rates(self):
        sim = Simulator()
        pipe = TelemetryPipeline(sim)
        counter = sim.metrics.counter("served")
        counter.add(10)
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        pipe.sample(1.0)  # first sight: no interval yet
        assert not pipe.has_series("served.rate")
        counter.add(30)
        pipe.sample(3.0)
        assert pipe.series("served.rate").points() == [(3.0, 15.0)]
        assert pipe.series("served.rate").kind == "rate"

    def test_gauges_are_sampled_verbatim(self):
        sim = Simulator()
        pipe = TelemetryPipeline(sim)
        sim.metrics.gauge("depth").set(7.0)
        pipe.sample(1.0)
        assert pipe.series("depth").points() == [(1.0, 7.0)]

    def test_registry_series_are_cursor_copied(self):
        sim = Simulator()
        pipe = TelemetryPipeline(sim)
        series = sim.metrics.series("lag")
        series.record(0.5, 1.0)
        series.record(0.9, 2.0)
        pipe.sample(1.0)
        assert pipe.series("lag").points() == [(0.5, 1.0), (0.9, 2.0)]
        series.record(1.5, 3.0)
        pipe.sample(2.0)
        # Only the new point was copied — no rescan, no duplicates.
        assert pipe.series("lag").points() == [(0.5, 1.0), (0.9, 2.0), (1.5, 3.0)]

    def test_histogram_percentiles_need_opt_in(self):
        sim = Simulator()
        pipe = TelemetryPipeline(sim)
        hist = sim.metrics.histogram("lat")
        hist.observe(1.0, at=0.5)
        pipe.sample(1.0)
        assert not pipe.has_series("lat.p50")  # no keep_observations: silent
        hist.keep_observations(64)
        for i in range(10):
            hist.observe(float(i), at=1.0 + 0.1 * i)
        pipe.sample(2.0)
        assert pipe.has_series("lat.p50")
        assert pipe.has_series("lat.p99")
        assert pipe.series("lat.p50").kind == "percentile"
        (t, p50) = pipe.series("lat.p50").last()
        assert t == 2.0
        assert 3.0 <= p50 <= 6.0

    def test_open_recovery_spans_become_a_gauge(self):
        sim = Simulator(tracer=Tracer())
        pipe = TelemetryPipeline(sim)
        span = sim.tracer.start("recover", category="recovery/star")
        pipe.sample(1.0)
        assert pipe.series("telemetry.recovery_active").last() == (1.0, 1.0)
        span.finish()
        pipe.sample(2.0)
        assert pipe.series("telemetry.recovery_active").last() == (2.0, 0.0)

    def test_same_instant_resample_is_a_noop(self):
        sim = Simulator()
        pipe = TelemetryPipeline(sim)
        sim.metrics.gauge("g").set(1.0)
        pipe.sample(1.0)
        sim.metrics.gauge("g").set(2.0)
        pipe.sample(1.0)
        assert pipe.series("g").points() == [(1.0, 1.0)]
        assert pipe.samples == 1

    def test_record_and_unknown_series(self):
        sim = Simulator()
        pipe = TelemetryPipeline(sim)
        pipe.record("custom", 1.0, 5.0, kind="gauge")
        assert pipe.names() == ["custom"]
        with pytest.raises(ConfigError):
            pipe.series("nope")

    def test_self_scheduled_mode_stops_cleanly(self):
        sim = Simulator()
        pipe = TelemetryPipeline(sim, TelemetryConfig(interval=0.5))
        sim.metrics.gauge("g").set(1.0)
        pipe.start()
        with pytest.raises(ConfigError):
            pipe.start()  # double-start is a config error
        sim.schedule(2.0, pipe.stop)
        sim.run_until_idle()
        assert not pipe.running
        # stop() at t=2.0 was enqueued first, so the t=2.0 tick is a no-op
        # and nothing reschedules past it.
        assert pipe.samples == 3
        assert sim.now == pytest.approx(2.0)

    def test_to_dict_is_deterministic(self):
        sim = Simulator()
        pipe = TelemetryPipeline(sim)
        sim.metrics.gauge("b").set(2.0)
        sim.metrics.gauge("a").set(1.0)
        pipe.sample(1.0)
        out = pipe.to_dict()
        assert out["format"] == "sr3-telemetry-1"
        assert list(out["series"]) == ["a", "b"]
        assert out["samples"] == 1


class TestHistogramObservations:
    """The registry-side opt-in that feeds windowed percentiles."""

    def test_off_by_default(self):
        sim = Simulator()
        hist = sim.metrics.histogram("h")
        hist.observe(1.0)
        assert not hist.keeps_observations
        assert hist.observations() == []
        assert "observations" not in sim.metrics.dump()["histograms"]["h"]

    def test_bounded_ring(self):
        sim = Simulator()
        hist = sim.metrics.histogram("h")
        hist.keep_observations(3)
        for i in range(5):
            hist.observe(float(i), at=float(i))
        assert hist.observations() == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]
        assert hist.count == 5  # aggregates still see everything

    def test_clock_binding_stamps_sim_time(self):
        sim = Simulator()
        hist = sim.metrics.histogram("h")
        hist.keep_observations()
        sim.schedule(2.5, lambda: hist.observe(9.0))
        sim.run_until_idle()
        assert hist.observations() == [(2.5, 9.0)]

    def test_dump_includes_observations(self):
        sim = Simulator()
        hist = sim.metrics.histogram("h")
        hist.keep_observations()
        hist.observe(4.0, at=1.0)
        dumped = sim.metrics.dump()["histograms"]["h"]
        assert dumped["observations"] == [[1.0, 4.0]]

    def test_limit_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.metrics.histogram("h").keep_observations(0)
