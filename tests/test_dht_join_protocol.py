"""Tests for the message-level Pastry join protocol."""

import math
import random

import pytest

from repro.dht.join import protocol_join
from repro.dht.overlay import Overlay
from repro.errors import OverlayError
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.util.ids import random_node_id


def build_overlay(count, seed=0):
    sim = Simulator()
    net = Network(sim)
    overlay = Overlay(sim, net, rng=random.Random(seed))
    overlay.build(count)
    return overlay


class TestProtocolJoin:
    def test_join_registers_node(self):
        overlay = build_overlay(60, seed=1)
        report = protocol_join(overlay)
        assert report.node in overlay.nodes
        assert report.node.alive
        assert len(overlay.nodes) == 61

    def test_joined_node_is_routable(self):
        overlay = build_overlay(60, seed=2)
        report = protocol_join(overlay)
        dest, _ = overlay.route(overlay.nodes[0], report.node.node_id)
        assert dest.node_id == report.node.node_id

    def test_joined_node_can_route(self):
        overlay = build_overlay(100, seed=3)
        report = protocol_join(overlay)
        rng = random.Random(7)
        for _ in range(20):
            key = random_node_id(rng)
            dest, _ = overlay.route(report.node, key)
            assert dest.node_id == overlay.responsible_node(key).node_id

    def test_leaf_set_matches_ring_neighbours(self):
        overlay = build_overlay(120, seed=4)
        report = protocol_join(overlay)
        newcomer = report.node
        # The protocol-built leaf set must contain the true ring successor
        # and predecessor.
        ordered = sorted(overlay.nodes, key=lambda n: n.node_id.value)
        position = ordered.index(newcomer)
        successor = ordered[(position + 1) % len(ordered)]
        predecessor = ordered[(position - 1) % len(ordered)]
        assert newcomer.leaf_set.contains(successor.node_id)
        assert newcomer.leaf_set.contains(predecessor.node_id)

    def test_neighbours_adopt_newcomer(self):
        overlay = build_overlay(80, seed=5)
        report = protocol_join(overlay)
        adopters = [
            n
            for n in overlay.alive_nodes()
            if n is not report.node and n.leaf_set.contains(report.node.node_id)
        ]
        assert adopters, "ring neighbours must insert the newcomer"

    def test_join_cost_logarithmic(self):
        small = build_overlay(30, seed=6)
        large = build_overlay(400, seed=6)
        r_small = protocol_join(small)
        r_large = protocol_join(large)
        # O(log N) messages: a 13x larger overlay costs far less than 13x.
        assert r_large.messages <= r_small.messages * math.log(400) / math.log(30) * 3
        assert r_large.control_bytes > 0

    def test_join_charges_control_traffic(self):
        overlay = build_overlay(50, seed=7)
        before = overlay.network.total_control_bytes
        report = protocol_join(overlay)
        assert overlay.network.total_control_bytes - before == pytest.approx(
            report.control_bytes
        )

    def test_multiple_sequential_joins(self):
        overlay = build_overlay(40, seed=8)
        rng = random.Random(1)
        for _ in range(10):
            protocol_join(overlay)
        assert len(overlay.nodes) == 50
        for _ in range(20):
            key = random_node_id(rng)
            start = rng.choice(overlay.alive_nodes())
            dest, _ = overlay.route(start, key)
            assert dest.node_id == overlay.responsible_node(key).node_id

    def test_dead_bootstrap_rejected(self):
        overlay = build_overlay(10, seed=9)
        victim = overlay.nodes[0]
        overlay.fail_node(victim)
        with pytest.raises(OverlayError):
            protocol_join(overlay, bootstrap=victim)

    def test_routing_table_nontrivial(self):
        overlay = build_overlay(200, seed=10)
        report = protocol_join(overlay)
        assert report.node.routing_table.size() >= 4
