"""Unit tests for the chaos fault injectors."""

import pytest

from repro.chaos import (
    INJECTOR_KINDS,
    BandwidthFlap,
    CrashWave,
    MidRecoveryCrash,
    NetworkPartition,
    PoissonChurn,
    RackFailure,
    SCENARIOS,
    Straggler,
    make_injector,
    run_scenario,
)
from repro.chaos.campaign import ChaosEngine
from repro.chaos.scenario import Scenario
from repro.bench.harness import build_scenario
from repro.errors import SimulationError


def make_engine(scenario=None, mechanism="star", num_nodes=16):
    scenario = scenario or Scenario(name="t", num_nodes=num_nodes, num_states=1)
    deployment = build_scenario(
        num_nodes=scenario.num_nodes,
        seed=scenario.seed,
        uplink_mbit=scenario.uplink_mbit or None,
        downlink_mbit=scenario.uplink_mbit or None,
    )
    return ChaosEngine(deployment, scenario, mechanism)


class TestRegistry:
    def test_at_least_six_injector_kinds(self):
        assert len(INJECTOR_KINDS) >= 6

    def test_round_trip_through_dict(self):
        for cls in INJECTOR_KINDS.values():
            original = cls()
            rebuilt = make_injector(original.to_dict())
            assert rebuilt == original

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown injector kind"):
            make_injector({"kind": "meteor_strike"})


class TestValidation:
    def test_crash_wave_needs_victims(self):
        with pytest.raises(SimulationError):
            CrashWave(count=0)
        with pytest.raises(SimulationError):
            CrashWave(victims="everyone")

    def test_partition_fraction_bounds(self):
        with pytest.raises(SimulationError):
            NetworkPartition(fraction=0.0)
        with pytest.raises(SimulationError):
            NetworkPartition(fraction=1.5)

    def test_churn_rate_positive(self):
        with pytest.raises(SimulationError):
            PoissonChurn(rate=0.0)

    def test_bandwidth_factor_bounds(self):
        with pytest.raises(SimulationError):
            BandwidthFlap(factor=0.0)
        with pytest.raises(SimulationError):
            Straggler(factor=1.5)

    def test_mid_recovery_target(self):
        with pytest.raises(SimulationError):
            MidRecoveryCrash(target="bystander")


class TestCrashWave:
    def test_owner_wave_kills_owners(self):
        engine = make_engine()
        engine.setup_states()
        owners = engine.owner_nodes()
        CrashWave(at=1.0, count=1, victims="owners").arm(engine)
        engine.sim.run_until_idle()
        crashed = {r.target for r in engine.injector.crashes()}
        assert crashed & {n.name for n in owners}

    def test_records_are_seed_deterministic(self):
        def timeline():
            engine = make_engine()
            engine.setup_states()
            CrashWave(at=1.0, count=2, victims="any").arm(engine)
            PoissonChurn(start=0.5, duration=5.0, rate=0.5, rejoin=False).arm(engine)
            engine.sim.run_until_idle()
            return [(r.time, r.kind, r.target) for r in engine.injector.records]

        assert timeline() == timeline()


class TestRackFailure:
    def test_kills_owner_and_neighbours(self):
        engine = make_engine()
        engine.setup_states()
        RackFailure(at=1.0, size=3).arm(engine)
        engine.sim.run_until_idle()
        assert len(engine.injector.crashes()) == 3


class TestPoissonChurn:
    def test_rejoining_keeps_membership(self):
        engine = make_engine()
        engine.setup_states()
        before = len(engine.overlay.alive_nodes())
        PoissonChurn(start=0.5, duration=10.0, rate=0.5, rejoin_delay=1.0).arm(engine)
        engine.sim.run_until_idle()
        crashes = len(engine.injector.crashes())
        assert crashes > 0
        assert engine.joins == crashes
        assert len(engine.overlay.alive_nodes()) == before


class TestNetworkPartition:
    def test_partitions_then_heals(self):
        engine = make_engine()
        engine.setup_states()
        NetworkPartition(at=1.0, fraction=0.25, heal_after=2.0).arm(engine)
        engine.sim.run_until_idle()
        assert not engine.network.partitioned
        assert engine.sim.metrics.counter("net.partitions").total == 1
        assert engine.sim.metrics.counter("net.heals").total == 1


class TestBandwidthInjectors:
    def test_flap_restores_bandwidth(self):
        engine = make_engine(
            Scenario(name="t", num_nodes=16, num_states=1, uplink_mbit=100.0)
        )
        engine.setup_states()
        before = {n.name: n.host.up_bw for n in engine.overlay.nodes}
        BandwidthFlap(at=0.5, hosts=2, factor=0.5, period=1.0, cycles=2).arm(engine)
        engine.sim.run_until_idle()
        after = {n.name: n.host.up_bw for n in engine.overlay.nodes}
        assert before == after

    def test_straggler_is_permanent(self):
        engine = make_engine(
            Scenario(name="t", num_nodes=16, num_states=1, uplink_mbit=100.0)
        )
        engine.setup_states()
        before = {n.name: n.host.up_bw for n in engine.overlay.nodes}
        Straggler(at=0.5, hosts=2, factor=0.25).arm(engine)
        engine.sim.run_until_idle()
        slowed = [
            n
            for n in engine.overlay.nodes
            if n.host.up_bw < before[n.name]
        ]
        assert len(slowed) == 2


class TestFailureInjectorSeed:
    """Regression: victim selection must follow the injector's own seed."""

    @staticmethod
    def picks(**kwargs):
        from repro.sim.failure import FailureInjector
        from repro.sim.kernel import Simulator
        from repro.sim.network import Network

        sim = Simulator()
        net = Network(sim)
        hosts = [net.add_host(f"h{i:02d}") for i in range(12)]
        injector = FailureInjector(sim, net, **kwargs)
        return [h.name for h in injector.pick_victims(hosts, 4)]

    def test_same_seed_same_victims(self):
        assert self.picks(seed=7) == self.picks(seed=7)
        assert self.picks(seed=7) != self.picks(seed=8)

    def test_default_is_seed_zero(self):
        assert self.picks() == self.picks(seed=0)

    def test_explicit_rng_wins_over_seed(self):
        import random

        assert self.picks(seed=3, rng=random.Random(9)) == self.picks(
            rng=random.Random(9)
        )


class TestMidRecoveryCrash:
    def test_fires_only_budgeted_times(self):
        engine = make_engine()
        engine.setup_states()
        MidRecoveryCrash(target="replacement", delay=0.5, times=1).arm(engine)
        # Two recoveries start; only the first takes the re-crash.
        fired = []
        engine.on_recovery_start(lambda *a: fired.append(a))
        CrashWave(at=1.0, count=1, victims="owners").arm(engine)
        engine.run()
        assert len(fired) >= 1

    def test_replacement_crash_is_survivable(self):
        outcome = run_scenario(SCENARIOS["mid-recovery-recrash"], "star")
        assert outcome.status in ("survived", "degraded")
        assert outcome.restarts >= 1
