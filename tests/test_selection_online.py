"""Online cost-model calibration and the per-shard tier decision."""

import pytest

from repro.errors import SelectionError
from repro.recovery.online import (
    CALIBRATED_MECHANISMS,
    OnlineSelector,
    ShardProfile,
)
from repro.recovery.selection import (
    Mechanism,
    SelectionExplanation,
    SelectionInputs,
    explain_selection,
    predict_recovery_seconds,
)
from repro.util.sizes import MB

SIZES_MB = (8, 16, 32, 64, 128)


def observed_cluster(selector, a=1.4, b=1.0, mechanism="tree"):
    """Feed five synthetic recoveries where the cluster runs a·p+b."""
    for size_mb in SIZES_MB:
        inputs = SelectionInputs(state_bytes=size_mb * MB)
        predicted = predict_recovery_seconds(mechanism, inputs)
        selector.observe(mechanism, inputs, a * predicted + b)


class TestCalibration:
    def test_identity_until_min_samples(self):
        selector = OnlineSelector(min_samples=3)
        inputs = SelectionInputs(state_bytes=8 * MB)
        selector.observe("tree", inputs, 5.0)
        selector.observe("tree", inputs, 5.0)
        assert selector.coefficients("tree") == (1.0, 0.0)
        assert selector.predict("tree", inputs) == pytest.approx(
            predict_recovery_seconds("tree", inputs)
        )

    def test_recovers_the_true_line(self):
        selector = OnlineSelector()
        observed_cluster(selector, a=1.4, b=1.0)
        a, b = selector.coefficients("tree")
        assert a == pytest.approx(1.4, rel=1e-6)
        assert b == pytest.approx(1.0, rel=1e-6)
        assert selector.calibrated_error("tree") == pytest.approx(0.0, abs=1e-9)

    def test_calibrated_strictly_beats_static_after_five(self):
        selector = OnlineSelector()
        observed_cluster(selector)
        assert selector.samples("tree") >= 5
        assert selector.calibrated_error("tree") < selector.static_error("tree")

    def test_calibrated_never_exceeds_static(self):
        # Noisy, non-linear cluster: the fit can't be exact, but (1, 0)
        # is inside the fit family so it can never do better.
        selector = OnlineSelector()
        for i, size_mb in enumerate(SIZES_MB):
            inputs = SelectionInputs(state_bytes=size_mb * MB)
            predicted = predict_recovery_seconds("star", inputs)
            selector.observe("star", inputs, predicted * (1.1 + 0.2 * (i % 3)))
        assert (
            selector.calibrated_error("star")
            <= selector.static_error("star") + 1e-12
        )

    def test_predict_applies_the_fitted_line(self):
        selector = OnlineSelector()
        observed_cluster(selector, a=2.0, b=0.0)
        inputs = SelectionInputs(state_bytes=48 * MB)
        static = predict_recovery_seconds("tree", inputs)
        assert selector.predict("tree", inputs) == pytest.approx(
            2.0 * static, rel=1e-6
        )

    def test_degenerate_design_falls_back_to_scale_fit(self):
        selector = OnlineSelector()
        inputs = SelectionInputs(state_bytes=8 * MB)
        predicted = predict_recovery_seconds("line", inputs)
        for _ in range(3):
            selector.observe("line", inputs, 2.0 * predicted)
        a, b = selector.coefficients("line")
        assert a == pytest.approx(2.0, rel=1e-6)
        assert b == 0.0

    def test_observe_explanation_folds_every_mechanism(self):
        selector = OnlineSelector()
        explanation = explain_selection(SelectionInputs(state_bytes=16 * MB))
        explanation.observe("tree", 4.0)
        explanation.observe("star", 6.0)
        selector.observe_explanation(explanation)
        assert selector.samples("tree") == 1
        assert selector.samples("star") == 1
        assert selector.total_samples == 2

    def test_validation(self):
        with pytest.raises(SelectionError):
            OnlineSelector(min_samples=1)
        selector = OnlineSelector()
        with pytest.raises(SelectionError):
            selector.samples("rocket")
        with pytest.raises(SelectionError):
            selector.observe("tree", SelectionInputs(state_bytes=1.0), -1.0)
        assert selector.static_error("tree") is None
        assert selector.calibrated_error("tree") is None


class TestSelectorRoundTrip:
    def test_to_from_dict_is_exact(self):
        selector = OnlineSelector(bandwidth=100 * MB, min_samples=3)
        observed_cluster(selector)
        observed_cluster(selector, a=1.1, b=0.2, mechanism="standby")
        payload = selector.to_dict()
        assert payload["format"] == "sr3-online-selector-1"
        restored = OnlineSelector.from_dict(payload, cost_model=None)
        assert restored == selector
        assert restored.coefficients("tree") == selector.coefficients("tree")
        assert restored.calibrated_error("standby") == pytest.approx(
            selector.calibrated_error("standby")
        )

    def test_from_dict_rejects_foreign_payloads(self):
        with pytest.raises(SelectionError, match="payload"):
            OnlineSelector.from_dict({"format": "sr3-bench-1"})


class TestShardDecisions:
    def test_slo_critical_with_standby_flips(self):
        selector = OnlineSelector()
        observed_cluster(selector)
        decisions = selector.decide_shards(
            [
                ShardProfile(0, 8 * MB, slo_critical=True, standby_provisioned=True)
            ]
        )
        assert decisions[0].mechanism is Mechanism.STANDBY
        assert "flip" in decisions[0].reason

    def test_cold_shards_get_the_cheapest_tier(self):
        selector = OnlineSelector()
        observed_cluster(selector)
        decisions = selector.decide_shards([ShardProfile(0, 8 * MB, cold=True)])
        assert decisions[0].mechanism is Mechanism.STAR
        assert "cold" in decisions[0].reason

    def test_warm_standby_wins_the_calibrated_argmin(self):
        selector = OnlineSelector()
        observed_cluster(selector)
        decisions = selector.decide_shards(
            [ShardProfile(0, 64 * MB, standby_provisioned=True)]
        )
        # A flip takeover is orders of magnitude below any bulk transfer.
        assert decisions[0].mechanism is Mechanism.STANDBY
        assert decisions[0].reason == "calibrated-cost argmin"

    def test_uncalibrated_falls_back_to_the_heuristic(self):
        selector = OnlineSelector()
        decisions = selector.decide_shards([ShardProfile(0, 8 * MB)])
        assert decisions[0].reason == "uncalibrated: Fig. 7 heuristic"
        assert decisions[0].mechanism in set(Mechanism) - {Mechanism.NONE}

    def test_decisions_come_back_in_shard_order(self):
        selector = OnlineSelector()
        profiles = [ShardProfile(i, 8 * MB) for i in (3, 0, 2, 1)]
        decisions = selector.decide_shards(profiles)
        assert [d.shard_index for d in decisions] == [0, 1, 2, 3]

    def test_profile_validation(self):
        with pytest.raises(SelectionError):
            ShardProfile(-1, 8 * MB)
        with pytest.raises(SelectionError):
            ShardProfile(0, -1.0)


class TestExplanationRoundTrip:
    def test_round_trip_with_standby_inputs(self):
        inputs = SelectionInputs(
            state_bytes=32 * MB,
            latency_sensitive=True,
            chain_links=3,
            delta_bytes=2 * MB,
            standby_provisioned=True,
            standby_refresh_bytes_per_s=4 * MB,
            standby_memory_bytes=32 * MB,
        )
        explanation = explain_selection(inputs)
        explanation.observe("tree", 4.2)
        explanation.observe(Mechanism.STANDBY, 0.31)
        restored = SelectionExplanation.from_dict(explanation.to_dict())
        assert restored == explanation
        assert restored.inputs.standby_provisioned is True
        assert "standby" in restored.predicted_seconds
        assert restored.model_error("tree") == pytest.approx(
            explanation.model_error("tree")
        )

    def test_legacy_payload_without_inputs_dict(self):
        payload = {
            "chosen": "tree",
            "state_bytes": 8 * MB,
            "predicted_seconds": {"tree": 3.0},
            "observed_seconds": {"tree": 3.3},
        }
        restored = SelectionExplanation.from_dict(payload)
        assert restored.inputs.state_bytes == 8 * MB
        assert restored.inputs.standby_provisioned is False
        assert restored.chosen is Mechanism.TREE
        assert restored.observed_seconds == {"tree": 3.3}

    def test_every_calibrated_mechanism_is_serializable(self):
        inputs = SelectionInputs(state_bytes=8 * MB, standby_provisioned=True)
        explanation = explain_selection(inputs)
        for key in CALIBRATED_MECHANISMS:
            explanation.observe(key, 1.0)
        restored = SelectionExplanation.from_dict(explanation.to_dict())
        assert set(restored.observed_seconds) == set(CALIBRATED_MECHANISMS)
