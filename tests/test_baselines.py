"""Unit tests for the four baseline recovery approaches."""

import pytest

from repro.errors import InsufficientShardsError, RecoveryError
from repro.recovery.baselines.checkpointing import CheckpointConfig, CheckpointingBaseline
from repro.recovery.baselines.fp4s import Fp4sBaseline, Fp4sConfig
from repro.recovery.baselines.lineage import LineageBaseline, LineageConfig
from repro.recovery.baselines.replication import ReplicationBaseline
from repro.recovery.model import run_handles
from repro.util.sizes import MB


class TestCheckpointing:
    def make(self, world):
        return CheckpointingBaseline(world.ctx, world.storage)

    def test_save_duration_grows_with_size(self, world):
        cp = self.make(world)
        durations = []
        for size in (8 * MB, 64 * MB):
            handle = cp.save(world.overlay.nodes[0], size)
            world.sim.run_until_idle()
            durations.append(handle.result.duration)
        assert durations[1] > durations[0]

    def test_recover_includes_fetch_and_replay(self, world):
        cp = self.make(world)
        handle = cp.recover(world.overlay.nodes[1], world.overlay.nodes[2], 64 * MB)
        result = run_handles(world.sim, [handle])[0]
        cfg = cp.config
        minimum = (
            world.ctx.cost_model.detection_delay
            + cfg.recover_coordination
            + 64 * MB / cfg.storage_rate
        )
        assert result.duration >= minimum
        assert result.bytes_transferred == pytest.approx(
            64 * MB * (1 + cfg.replay_factor)
        )

    def test_requests_charged_per_chunk(self, world):
        cp = self.make(world)
        cp.save(world.overlay.nodes[0], 16 * MB)
        # 16 MB at 4 MB chunks -> 4 requests.
        assert world.storage.requests_served == 4

    def test_zero_replay_factor(self, world):
        cp = CheckpointingBaseline(
            world.ctx, world.storage, CheckpointConfig(replay_factor=0.0)
        )
        handle = cp.recover(world.overlay.nodes[1], world.overlay.nodes[2], 8 * MB)
        result = run_handles(world.sim, [handle])[0]
        assert result.duration > 0

    def test_negative_size_rejected(self, world):
        with pytest.raises(RecoveryError):
            self.make(world).save(world.overlay.nodes[0], -1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CheckpointConfig(storage_rate=0)
        with pytest.raises(ValueError):
            CheckpointConfig(chunk_bytes=0)
        with pytest.raises(ValueError):
            CheckpointConfig(replay_factor=-1)

    def test_recovery_slower_than_sr3_star(self, world_factory):
        from repro.recovery.star import StarRecovery

        w = world_factory()
        w.save_synthetic(size=64 * MB, shards=8)
        replacement = w.fail_owner()
        registered = w.manager.states["app/state"]
        star = StarRecovery().start(w.ctx, registered.plan, replacement, "app/state")
        star_time = run_handles(w.sim, [star])[0].duration

        w2 = world_factory()
        cp = CheckpointingBaseline(w2.ctx, w2.storage)
        handle = cp.recover(w2.overlay.nodes[1], w2.overlay.nodes[2], 64 * MB)
        cp_time = run_handles(w2.sim, [handle])[0].duration
        assert star_time < cp_time


class TestReplication:
    def test_failover_is_fast(self, world):
        rep = ReplicationBaseline(world.ctx)
        rep.protect(world.overlay.nodes[0], world.overlay.nodes[1])
        handle = rep.recover(world.overlay.nodes[0], 64 * MB)
        result = run_handles(world.sim, [handle])[0]
        assert result.duration == pytest.approx(rep.config.failover_delay)
        assert result.bytes_transferred == 0

    def test_standby_count_tracks_hardware_cost(self, world):
        rep = ReplicationBaseline(world.ctx)
        rep.protect(world.overlay.nodes[0], world.overlay.nodes[1])
        rep.protect(world.overlay.nodes[2], world.overlay.nodes[3])
        assert rep.standby_count() == 2

    def test_duplicate_input_accounting(self, world):
        rep = ReplicationBaseline(world.ctx)
        rep.protect(world.overlay.nodes[0], world.overlay.nodes[1])
        rep.duplicate_input(world.overlay.nodes[0], 1000)
        assert rep.duplicated_bytes == 1000

    def test_unprotected_primary_rejected(self, world):
        rep = ReplicationBaseline(world.ctx)
        with pytest.raises(RecoveryError):
            rep.recover(world.overlay.nodes[0], 1 * MB)
        with pytest.raises(RecoveryError):
            rep.duplicate_input(world.overlay.nodes[0], 10)

    def test_self_standby_rejected(self, world):
        rep = ReplicationBaseline(world.ctx)
        with pytest.raises(RecoveryError):
            rep.protect(world.overlay.nodes[0], world.overlay.nodes[0])

    def test_dead_standby_rejected(self, world):
        rep = ReplicationBaseline(world.ctx)
        rep.protect(world.overlay.nodes[0], world.overlay.nodes[1])
        world.overlay.fail_node(world.overlay.nodes[1])
        with pytest.raises(RecoveryError):
            rep.recover(world.overlay.nodes[0], 1 * MB)


class TestLineage:
    def test_matches_closed_form(self, world):
        lineage = LineageBaseline(world.ctx)
        handle = lineage.recover(world.overlay.nodes[0], 64 * MB)
        result = run_handles(world.sim, [handle])[0]
        assert result.duration == pytest.approx(
            lineage.recovery_time(64 * MB), rel=1e-6
        )

    def test_longer_lineage_slower(self, world_factory):
        times = []
        for depth in (4, 16):
            w = world_factory()
            lineage = LineageBaseline(w.ctx, LineageConfig(lineage_depth=depth))
            handle = lineage.recover(w.overlay.nodes[0], 32 * MB)
            times.append(run_handles(w.sim, [handle])[0].duration)
        assert times[1] > times[0]

    def test_multiple_failures_slower(self, world_factory):
        times = []
        for failures in (1, 8):
            w = world_factory()
            lineage = LineageBaseline(w.ctx)
            handle = lineage.recover(
                w.overlay.nodes[0], 32 * MB, simultaneous_failures=failures
            )
            times.append(run_handles(w.sim, [handle])[0].duration)
        assert times[1] > times[0]

    def test_invalid_inputs(self, world):
        lineage = LineageBaseline(world.ctx)
        with pytest.raises(RecoveryError):
            lineage.recover(world.overlay.nodes[0], -1)
        with pytest.raises(RecoveryError):
            lineage.recover(world.overlay.nodes[0], 1, simultaneous_failures=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LineageConfig(lineage_depth=0)
        with pytest.raises(ValueError):
            LineageConfig(parallelism=0)
        with pytest.raises(ValueError):
            LineageConfig(recompute_rate=0)


class TestFp4s:
    def test_save_writes_n_fragments(self, world):
        fp4s = Fp4sBaseline(world.ctx)
        targets = world.overlay.nodes[1:31]
        handle = fp4s.save(world.overlay.nodes[0], targets, 64 * MB)
        world.sim.run_until_idle()
        result = handle.result
        assert result.replicas_written == 26
        assert result.bytes_transferred == pytest.approx(64 * MB * 26 / 16)

    def test_storage_overhead_is_62_5_percent(self):
        assert Fp4sConfig().storage_overhead == pytest.approx(0.625)

    def test_recover_needs_m_providers(self, world):
        fp4s = Fp4sBaseline(world.ctx)
        with pytest.raises(InsufficientShardsError):
            fp4s.recover(world.overlay.nodes[1:10], world.overlay.nodes[0], 8 * MB)

    def test_decode_overhead_grows_with_size(self, world_factory):
        times = []
        for size in (32 * MB, 128 * MB):
            w = world_factory()
            fp4s = Fp4sBaseline(w.ctx)
            handle = fp4s.recover(w.overlay.nodes[1:31], w.overlay.nodes[0], size)
            times.append(run_handles(w.sim, [handle])[0].duration)
        assert times[1] > times[0]

    def test_slower_than_star_due_to_decode(self, world_factory):
        from repro.recovery.star import StarRecovery

        w = world_factory()
        w.save_synthetic(size=128 * MB, shards=16)
        replacement = w.fail_owner()
        registered = w.manager.states["app/state"]
        star = StarRecovery().start(w.ctx, registered.plan, replacement, "app/state")
        star_time = run_handles(w.sim, [star])[0].duration

        w2 = world_factory()
        fp4s = Fp4sBaseline(w2.ctx)
        handle = fp4s.recover(w2.overlay.nodes[1:31], w2.overlay.nodes[0], 128 * MB)
        fp4s_time = run_handles(w2.sim, [handle])[0].duration
        assert fp4s_time > star_time

    def test_real_payload_roundtrip(self, world):
        fp4s = Fp4sBaseline(world.ctx)
        payload = b"the operator state as real bytes" * 100
        fragments = fp4s.encode_payload(payload)
        assert len(fragments) == 26
        assert fp4s.decode_payload(fragments[10:]) == payload

    def test_save_needs_enough_targets(self, world):
        fp4s = Fp4sBaseline(world.ctx)
        with pytest.raises(RecoveryError):
            fp4s.save(world.overlay.nodes[0], world.overlay.nodes[1:5], 8 * MB)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Fp4sConfig(num_data=16, num_coded=8)
        with pytest.raises(ValueError):
            Fp4sConfig(encode_rate=0)
