"""Unit tests for the remediation policy table (repro.control.policy)."""

import pytest

from repro.control import PolicyRule, PolicyTable, default_policy
from repro.control.diagnose import CONDITIONS, Diagnosis
from repro.errors import ConfigError


def diag(condition="owner-lost", severity="critical", state=None, node=None):
    return Diagnosis(
        condition=condition,
        severity=severity,
        detected_at=1.0,
        state=state,
        node=node,
    )


class TestPolicyRule:
    def test_matches_condition(self):
        rule = PolicyRule(condition="owner-lost", action="recover")
        assert rule.matches(diag("owner-lost", state="s"))
        assert not rule.matches(diag("replica-thin", state="s"))

    def test_matches_severity_filter(self):
        rule = PolicyRule(
            condition="replica-thin", action="re-replicate", severity="critical"
        )
        assert rule.matches(diag("replica-thin", severity="critical", state="s"))
        assert not rule.matches(diag("replica-thin", severity="warning", state="s"))

    def test_severity_none_matches_any(self):
        rule = PolicyRule(condition="replica-thin", action="re-replicate")
        for severity in ("critical", "warning"):
            assert rule.matches(diag("replica-thin", severity=severity, state="s"))

    def test_match_glob_on_subject(self):
        rule = PolicyRule(condition="owner-lost", action="recover", match="app/*")
        assert rule.matches(diag(state="app/state"))
        assert not rule.matches(diag(state="other/state"))

    def test_subject_is_node_for_node_conditions(self):
        rule = PolicyRule(condition="flaky-node", action="rebalance", match="node-1*")
        assert rule.matches(diag("flaky-node", severity="warning", node="node-12"))
        assert not rule.matches(diag("flaky-node", severity="warning", node="node-2"))

    def test_unknown_condition_rejected(self):
        with pytest.raises(ConfigError):
            PolicyRule(condition="nonsense", action="recover")

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError):
            PolicyRule(condition="owner-lost", action="recover", max_retries=-1)

    def test_params_dict_normalized_to_sorted_tuple(self):
        rule = PolicyRule(
            condition="owner-lost",
            action="recover",
            params={"mechanism": "tree", "a": 1},
        )
        assert rule.params == (("a", 1), ("mechanism", "tree"))

    def test_round_trip(self):
        rule = PolicyRule(
            condition="flaky-node",
            action="rebalance",
            severity="warning",
            match="node-*",
            max_retries=3,
            escalation="evict-node",
            params={"x": 2},
        )
        assert PolicyRule.from_dict(rule.to_dict()) == rule


class TestPolicyTable:
    def test_first_match_wins(self):
        specific = PolicyRule(condition="owner-lost", action="recover", match="app/*")
        general = PolicyRule(condition="owner-lost", action="rewrite")
        table = PolicyTable(rules=[specific, general])
        assert table.lookup(diag(state="app/state")) is specific
        assert table.lookup(diag(state="other")) is general

    def test_lookup_miss_returns_none(self):
        table = PolicyTable(rules=[PolicyRule(condition="owner-lost", action="recover")])
        assert table.lookup(diag("hot-shard", severity="warning", state="s")) is None

    def test_extend_prepends(self):
        base = default_policy()
        override = PolicyRule(condition="owner-lost", action="rewrite", match="app/*")
        extended = base.extend([override])
        assert extended.lookup(diag(state="app/state")) is override
        # The base table is untouched and still resolves to "recover".
        assert base.lookup(diag(state="app/state")).action == "recover"
        assert extended.lookup(diag(state="other")).action == "recover"

    def test_round_trip(self):
        table = default_policy(mechanism="tree")
        assert PolicyTable.from_dict(table.to_dict()) == table


class TestDefaultPolicy:
    def test_covers_every_condition(self):
        table = default_policy()
        for condition in CONDITIONS:
            severity = "critical" if condition in ("owner-lost", "replica-thin") else "warning"
            found = table.lookup(diag(condition, severity=severity, state="s", node="n"))
            assert found is not None, condition

    def test_expected_actions(self):
        table = default_policy()
        by_condition = {rule.condition: rule for rule in table.rules}
        assert by_condition["owner-lost"].action == "recover"
        assert by_condition["replica-thin"].action == "re-replicate"
        assert by_condition["replica-thin"].escalation == "rewrite"
        assert by_condition["chain-too-long"].action == "compact-chain"
        assert by_condition["flaky-node"].action == "rebalance"
        assert by_condition["flaky-node"].escalation == "evict-node"
        assert by_condition["hot-shard"].action == "rebalance"

    def test_mechanism_pin(self):
        table = default_policy(mechanism="tree")
        rule = table.lookup(diag("owner-lost", state="s"))
        assert dict(rule.params) == {"mechanism": "tree"}
        # Unpinned: the recover action falls back to the Fig. 7 heuristic.
        assert default_policy().lookup(diag("owner-lost", state="s")).params == ()

    def test_recovery_always_retries(self):
        # Nothing is more important than getting the state back online.
        rule = default_policy(max_retries=0).lookup(diag("owner-lost", state="s"))
        assert rule.max_retries >= 2
