"""The live-traffic load driver: ingest, kill, rollback, replay, metrics."""

import pytest

from repro.errors import LiveHarnessError
from repro.live import ConstantRate, FlashCrowd, LoadDriver, build_live_cell
from repro.recovery.line import LineRecovery
from repro.recovery.star import StarRecovery


def small_cell(seed=3):
    return build_live_cell(num_nodes=12, seed=seed)


def kill_run(seed=3, app_load=True, rate=None, **overrides):
    cell = small_cell(seed)
    kwargs = dict(
        duration=20.0,
        service_rate=2_500.0,
        checkpoint_at=(4.0,),
        kill_at=8.0,
        mechanism=StarRecovery(fanout_bits=2),
        bulk_state_mb=8.0,
        app_load=app_load,
    )
    kwargs.update(overrides)
    driver = LoadDriver(cell, rate or ConstantRate(300.0), **kwargs)
    return cell, driver.run()


class TestNoFailureRun:
    def test_serves_every_arrival_in_order(self):
        cell = small_cell()
        driver = LoadDriver(
            cell, ConstantRate(200.0), duration=10.0, service_rate=2_000.0
        )
        report = driver.run()
        assert report.arrived == 2_000
        assert report.served == 2_000
        assert report.replayed == 0
        assert report.killed_at is None
        assert report.recovery_s is None
        # Everything lands in "before" when nothing failed.
        assert report.phase("before").count == 2_000
        assert report.phases["during"] is None
        assert report.phases["after"] is None
        # Sub-tick latency: the pipeline keeps up with the offered load.
        assert report.phase("before").p99 < 0.2

    def test_driver_runs_once(self):
        cell = small_cell()
        driver = LoadDriver(cell, ConstantRate(100.0), duration=5.0)
        driver.run()
        with pytest.raises(LiveHarnessError):
            driver.run()


class TestKillAndRecovery:
    def test_recovery_report_populated(self):
        _, report = kill_run()
        assert report.killed_at == pytest.approx(8.0, abs=0.2)
        assert report.recovered_at is not None
        assert report.recovery_s is not None and report.recovery_s > 0
        assert report.replayed > 0
        assert report.replay_lag_peak > 0
        assert report.drain_s is not None and report.drain_s > 0
        assert report.catchup_events_per_s is not None
        # Catch-up runs faster than the offered 300 ev/s, else it never drains.
        assert report.catchup_events_per_s > 300.0
        for phase in ("before", "during", "after"):
            assert report.phase(phase).count > 0
        assert report.phase("during").p99 > report.phase("before").p99

    def test_exactly_once_state_equals_failure_free_run(self):
        quiet_cell, quiet = kill_run(kill_at=None, bulk_state_mb=0.0, checkpoint_at=())
        killed_cell, killed = kill_run()
        assert quiet.served == killed.served
        assert quiet_cell.cluster.state_checksums() == killed_cell.cluster.state_checksums()

    def test_deterministic_given_seed(self):
        _, a = kill_run()
        _, b = kill_run()
        assert a.to_dict() == b.to_dict()

    def test_app_flows_slow_recovery(self):
        rate = FlashCrowd(base=300.0, peak=1_200.0, at=6.0, ramp=2.0, hold=8.0, decay=4.0)
        _, loaded = kill_run(rate=rate, app_load=True, bulk_state_mb=16.0)
        _, quiet = kill_run(rate=rate, app_load=False, bulk_state_mb=16.0)
        assert loaded.recovery_s > quiet.recovery_s

    def test_mechanism_is_pluggable(self):
        _, star = kill_run(mechanism=StarRecovery(fanout_bits=2))
        _, line = kill_run(mechanism=LineRecovery(path_length=4))
        assert star.recovery_s != line.recovery_s


class TestValidation:
    def test_kill_requires_prior_checkpoint(self):
        cell = small_cell()
        with pytest.raises(LiveHarnessError):
            LoadDriver(
                cell,
                ConstantRate(100.0),
                duration=10.0,
                kill_at=5.0,
                checkpoint_at=(6.0,),
            )

    def test_kill_inside_duration(self):
        cell = small_cell()
        with pytest.raises(LiveHarnessError):
            LoadDriver(
                cell,
                ConstantRate(100.0),
                duration=10.0,
                kill_at=12.0,
                checkpoint_at=(4.0,),
            )

    def test_positive_knobs(self):
        cell = small_cell()
        with pytest.raises(LiveHarnessError):
            LoadDriver(cell, ConstantRate(100.0), duration=0.0)
        with pytest.raises(LiveHarnessError):
            LoadDriver(cell, ConstantRate(100.0), duration=5.0, tick=0.0)
        with pytest.raises(LiveHarnessError):
            LoadDriver(cell, ConstantRate(100.0), duration=5.0, service_rate=-1.0)
        with pytest.raises(LiveHarnessError):
            LoadDriver(cell, ConstantRate(100.0), duration=5.0, shuffle_fraction=1.5)


class TestBarrierConsistency:
    def test_kill_defers_past_inflight_save(self):
        # Checkpoint scheduled immediately before the kill: the save round
        # is still landing replicas when kill_at arrives, so the driver
        # must wait for the barrier before failing the owner.
        _, report = kill_run(checkpoint_at=(4.0, 7.9), kill_at=8.0)
        assert report.killed_at is not None
        assert report.killed_at >= 8.0
        assert report.recovered_at is not None

    def test_multiple_checkpoints_roll_back_to_last_barrier(self):
        quiet_cell, _ = kill_run(kill_at=None, bulk_state_mb=0.0, checkpoint_at=())
        killed_cell, report = kill_run(checkpoint_at=(2.0, 4.0, 6.0))
        assert quiet_cell.cluster.state_checksums() == killed_cell.cluster.state_checksums()
        # Later barrier => shorter replay gap than the single-checkpoint run.
        _, single = kill_run(checkpoint_at=(4.0,))
        assert report.replayed < single.replayed
