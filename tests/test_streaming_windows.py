"""Unit tests for the window operators."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StreamRuntimeError
from repro.streaming.windows import SessionWindow, SlidingWindow, TumblingWindow


class TestTumbling:
    def test_pane_closes_when_next_opens(self):
        w = TumblingWindow(10.0)
        assert w.add(1.0, "a") == []
        assert w.add(5.0, "b") == []
        closed = w.add(11.0, "c")
        assert len(closed) == 1
        assert closed[0].items == ["a", "b"]
        assert closed[0].start == 0.0 and closed[0].end == 10.0

    def test_flush_closes_remaining(self):
        w = TumblingWindow(10.0)
        w.add(1.0, "a")
        closed = w.add(25.0, "b")
        assert [p.items for p in closed] == [["a"]]
        assert [p.items for p in w.flush()] == [["b"]]

    def test_gap_windows_skipped(self):
        w = TumblingWindow(10.0)
        w.add(1.0, "a")
        closed = w.add(55.0, "b")
        assert len(closed) == 1

    def test_late_data_joins_open_pane(self):
        w = TumblingWindow(10.0)
        w.add(15.0, "a")
        w.add(12.0, "late")  # same pane, earlier timestamp
        panes = w.flush()
        assert panes[0].items == ["a", "late"]

    def test_invalid_size(self):
        with pytest.raises(StreamRuntimeError):
            TumblingWindow(0)

    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=60))
    def test_no_data_loss_for_ordered_input(self, times):
        w = TumblingWindow(7.0)
        collected = []
        for i, t in enumerate(sorted(times)):
            for pane in w.add(t, i):
                collected.extend(pane.items)
        for pane in w.flush():
            collected.extend(pane.items)
        assert sorted(collected) == list(range(len(times)))


class TestSliding:
    def test_item_lands_in_overlapping_windows(self):
        w = SlidingWindow(size=10.0, slide=5.0)
        w.add(7.0, "a")  # windows [0,10) and [5,15)
        panes = w.flush()
        assert len(panes) == 2
        assert all("a" in p.items for p in panes)

    def test_pane_closes_past_end(self):
        w = SlidingWindow(size=10.0, slide=5.0)
        w.add(2.0, "a")
        closed = w.add(12.0, "b")
        assert any(p.end <= 12.0 and "a" in p.items for p in closed)

    def test_slide_larger_than_size_rejected(self):
        with pytest.raises(StreamRuntimeError):
            SlidingWindow(size=5.0, slide=10.0)

    def test_invalid_params(self):
        with pytest.raises(StreamRuntimeError):
            SlidingWindow(0, 1)

    def test_tumbling_equivalence_when_slide_equals_size(self):
        sliding = SlidingWindow(size=10.0, slide=10.0)
        sliding.add(1.0, "a")
        closed = sliding.add(11.0, "b")
        assert len(closed) == 1
        assert closed[0].items == ["a"]


class TestSession:
    def test_items_within_gap_share_session(self):
        w = SessionWindow(gap=5.0)
        assert w.add("u", 1.0, "a") is None
        assert w.add("u", 4.0, "b") is None
        panes = w.flush()
        assert len(panes) == 1
        assert panes[0].items == ["a", "b"]

    def test_gap_expiry_closes_previous_session(self):
        w = SessionWindow(gap=5.0)
        w.add("u", 1.0, "a")
        closed = w.add("u", 10.0, "b")
        assert closed is not None
        assert closed.items == ["a"]
        assert w.flush()[0].items == ["b"]

    def test_sessions_are_per_key(self):
        w = SessionWindow(gap=5.0)
        w.add("u1", 1.0, "a")
        assert w.add("u2", 20.0, "b") is None  # different key: no closure
        assert len(w.flush()) == 2

    def test_expire_sweeps_idle_sessions(self):
        w = SessionWindow(gap=5.0)
        w.add("u1", 1.0, "a")
        w.add("u2", 8.0, "b")
        expired = w.expire(now=9.0)
        assert len(expired) == 1
        assert expired[0].items == ["a"]

    def test_session_bounds_track_items(self):
        w = SessionWindow(gap=10.0)
        w.add("u", 3.0, "a")
        w.add("u", 7.0, "b")
        pane = w.flush()[0]
        assert pane.start == 3.0
        assert pane.end == 7.0

    def test_invalid_gap(self):
        with pytest.raises(StreamRuntimeError):
            SessionWindow(0)
