"""Unit tests for the SR3 save pipeline."""

import pytest

from repro.errors import StateError
from repro.recovery.save import sr3_save
from repro.state.partitioner import partition_synthetic
from repro.state.placement import LeafSetPlacement
from repro.state.version import StateVersion
from repro.util.sizes import MB


def make_shards(size=8 * MB, count=4, name="app/state"):
    return partition_synthetic(name, int(size), count, StateVersion(0.0, 1))


class TestSave:
    def test_all_replicas_installed(self, world):
        handle = sr3_save(
            world.ctx, world.overlay.nodes[0], make_shards(), 2, LeafSetPlacement()
        )
        world.sim.run_until_idle()
        result = handle.result
        assert result.replicas_written == 8
        for placed in result.plan.placements:
            assert placed.node.get_shard(placed.replica.key) is placed.replica

    def test_duration_positive_and_bytes_counted(self, world):
        handle = sr3_save(
            world.ctx, world.overlay.nodes[0], make_shards(), 2, LeafSetPlacement()
        )
        world.sim.run_until_idle()
        result = handle.result
        assert result.duration > 0
        assert result.bytes_transferred == pytest.approx(2 * 8 * MB)

    def test_serial_slower_than_parallel_under_constraint(self, world_factory):
        serial_world = world_factory(link_mbit=100)
        h1 = sr3_save(
            serial_world.ctx,
            serial_world.overlay.nodes[0],
            make_shards(),
            2,
            LeafSetPlacement(),
            serial=True,
        )
        serial_world.sim.run_until_idle()
        parallel_world = world_factory(link_mbit=100)
        h2 = sr3_save(
            parallel_world.ctx,
            parallel_world.overlay.nodes[0],
            make_shards(),
            2,
            LeafSetPlacement(),
            serial=False,
        )
        parallel_world.sim.run_until_idle()
        assert h2.result.duration <= h1.result.duration

    def test_larger_state_takes_longer(self, world_factory):
        durations = []
        for size in (8 * MB, 64 * MB):
            w = world_factory(link_mbit=1000)
            handle = sr3_save(
                w.ctx, w.overlay.nodes[0], make_shards(size=size), 2, LeafSetPlacement()
            )
            w.sim.run_until_idle()
            durations.append(handle.result.duration)
        assert durations[1] > durations[0]

    def test_more_replicas_cost_more(self, world_factory):
        durations = []
        for replicas in (2, 4):
            w = world_factory(link_mbit=1000)
            handle = sr3_save(
                w.ctx, w.overlay.nodes[0], make_shards(), replicas, LeafSetPlacement()
            )
            w.sim.run_until_idle()
            durations.append(handle.result.duration)
        assert durations[1] > durations[0]

    def test_zero_shards_rejected(self, world):
        with pytest.raises(StateError):
            sr3_save(world.ctx, world.overlay.nodes[0], [], 2, LeafSetPlacement())

    def test_handle_not_done_before_run(self, world):
        handle = sr3_save(
            world.ctx, world.overlay.nodes[0], make_shards(), 2, LeafSetPlacement()
        )
        assert not handle.done
        world.sim.run_until_idle()
        assert handle.done

    def test_on_done_callback(self, world):
        handle = sr3_save(
            world.ctx, world.overlay.nodes[0], make_shards(), 2, LeafSetPlacement()
        )
        seen = []
        handle.on_done(lambda r: seen.append(r.state_name))
        world.sim.run_until_idle()
        assert seen == ["app/state"]
