"""Unit tests for the SR3 save pipeline."""

import pytest

from repro.errors import RecoveryError, StateError
from repro.recovery.save import SaveHandle, SaveResult, sr3_save
from repro.state.shard import DeltaShard
from repro.state.partitioner import partition_synthetic
from repro.state.placement import LeafSetPlacement
from repro.state.version import StateVersion
from repro.util.sizes import MB


def make_shards(size=8 * MB, count=4, name="app/state"):
    return partition_synthetic(name, int(size), count, StateVersion(0.0, 1))


class TestSave:
    def test_all_replicas_installed(self, world):
        handle = sr3_save(
            world.ctx, world.overlay.nodes[0], make_shards(), 2, LeafSetPlacement()
        )
        world.sim.run_until_idle()
        result = handle.result
        assert result.replicas_written == 8
        for placed in result.plan.placements:
            assert placed.node.get_shard(placed.replica.key) is placed.replica

    def test_duration_positive_and_bytes_counted(self, world):
        handle = sr3_save(
            world.ctx, world.overlay.nodes[0], make_shards(), 2, LeafSetPlacement()
        )
        world.sim.run_until_idle()
        result = handle.result
        assert result.duration > 0
        assert result.bytes_transferred == pytest.approx(2 * 8 * MB)

    def test_serial_slower_than_parallel_under_constraint(self, world_factory):
        serial_world = world_factory(link_mbit=100)
        h1 = sr3_save(
            serial_world.ctx,
            serial_world.overlay.nodes[0],
            make_shards(),
            2,
            LeafSetPlacement(),
            serial=True,
        )
        serial_world.sim.run_until_idle()
        parallel_world = world_factory(link_mbit=100)
        h2 = sr3_save(
            parallel_world.ctx,
            parallel_world.overlay.nodes[0],
            make_shards(),
            2,
            LeafSetPlacement(),
            serial=False,
        )
        parallel_world.sim.run_until_idle()
        assert h2.result.duration <= h1.result.duration

    def test_larger_state_takes_longer(self, world_factory):
        durations = []
        for size in (8 * MB, 64 * MB):
            w = world_factory(link_mbit=1000)
            handle = sr3_save(
                w.ctx, w.overlay.nodes[0], make_shards(size=size), 2, LeafSetPlacement()
            )
            w.sim.run_until_idle()
            durations.append(handle.result.duration)
        assert durations[1] > durations[0]

    def test_more_replicas_cost_more(self, world_factory):
        durations = []
        for replicas in (2, 4):
            w = world_factory(link_mbit=1000)
            handle = sr3_save(
                w.ctx, w.overlay.nodes[0], make_shards(), replicas, LeafSetPlacement()
            )
            w.sim.run_until_idle()
            durations.append(handle.result.duration)
        assert durations[1] > durations[0]

    def test_zero_shards_rejected(self, world):
        with pytest.raises(StateError):
            sr3_save(world.ctx, world.overlay.nodes[0], [], 2, LeafSetPlacement())

    def test_handle_not_done_before_run(self, world):
        handle = sr3_save(
            world.ctx, world.overlay.nodes[0], make_shards(), 2, LeafSetPlacement()
        )
        assert not handle.done
        world.sim.run_until_idle()
        assert handle.done

    def test_on_done_callback(self, world):
        handle = sr3_save(
            world.ctx, world.overlay.nodes[0], make_shards(), 2, LeafSetPlacement()
        )
        seen = []
        handle.on_done(lambda r: seen.append(r.state_name))
        world.sim.run_until_idle()
        assert seen == ["app/state"]


class TestSaveHandle:
    """SaveHandle mirrors RecoveryHandle's resolution semantics."""

    def resolved(self):
        handle = SaveHandle("app/state")
        result = SaveResult(
            state_name="app/state",
            state_bytes=8.0 * MB,
            started_at=0.0,
            finished_at=1.0,
            replicas_written=8,
            bytes_transferred=16.0 * MB,
            plan=None,
        )
        handle._resolve(result)
        return handle, result

    def test_late_on_done_fires_immediately(self):
        handle, result = self.resolved()
        seen = []
        handle.on_done(seen.append)
        assert seen == [result]

    def test_result_before_done_raises(self):
        handle = SaveHandle("app/state")
        with pytest.raises(RecoveryError, match="not finished"):
            _ = handle.result

    def test_double_resolve_rejected(self):
        handle, result = self.resolved()
        with pytest.raises(RecoveryError, match="resolved twice"):
            handle._resolve(result)

    def test_failed_handle_surfaces_its_error(self):
        handle = SaveHandle("app/state")
        boom = StateError("disk gone")
        handle._fail(boom)
        assert handle.done
        with pytest.raises(StateError, match="disk gone"):
            _ = handle.result

    def test_resolve_after_fail_rejected(self):
        handle, result = self.resolved()
        with pytest.raises(RecoveryError, match="resolved twice"):
            handle._fail(StateError("late failure"))


class TestDeltaRounds:
    def delta_shards(self, base, count=4, name="app/state"):
        version = StateVersion(1.0, 2)
        return [
            DeltaShard.synthetic_delta(
                name, i, count, version, base[0].version, 1, 64 * 1024
            )
            for i in range(count)
        ]

    def test_delta_mode_carried_to_result(self, world):
        base = make_shards()
        sr3_save(world.ctx, world.overlay.nodes[0], base, 2, LeafSetPlacement())
        world.sim.run_until_idle()
        handle = sr3_save(
            world.ctx,
            world.overlay.nodes[0],
            self.delta_shards(base),
            2,
            LeafSetPlacement(),
            mode="delta",
            chain_len=2,
        )
        world.sim.run_until_idle()
        result = handle.result
        assert result.mode == "delta"
        assert result.chain_len == 2
        assert result.delta_bytes == pytest.approx(4 * 64 * 1024)
        assert result.bytes_transferred == pytest.approx(2 * 4 * 64 * 1024)

    def test_full_save_reports_no_delta_payload(self, world):
        handle = sr3_save(
            world.ctx, world.overlay.nodes[0], make_shards(), 2, LeafSetPlacement()
        )
        world.sim.run_until_idle()
        assert handle.result.mode == "full"
        assert handle.result.delta_bytes == 0.0
        assert handle.result.chain_len == 1

    def test_unknown_mode_rejected(self, world):
        with pytest.raises(StateError, match="unknown save mode"):
            sr3_save(
                world.ctx,
                world.overlay.nodes[0],
                make_shards(),
                2,
                LeafSetPlacement(),
                mode="bogus",
            )
