"""Multi-window burn-rate SLO alerting over telemetry series."""

import pytest

from repro.errors import ConfigError
from repro.obs.slo import DEFAULT_WINDOWS, SLO, BurnWindow, SLOEngine
from repro.obs.timeseries import TelemetryPipeline
from repro.sim import Simulator


def pipeline_with(points, series="lat", kind="gauge"):
    pipe = TelemetryPipeline(Simulator())
    for t, v in points:
        pipe.record(series, t, v, kind=kind)
    return pipe


def engine_with(points, **slo_overrides):
    pipe = pipeline_with(points)
    engine = SLOEngine(pipe)
    spec = dict(
        name="lat-ok",
        series="lat",
        objective="le",
        threshold=1.0,
        budget=0.1,
        windows=(BurnWindow(long_s=4.0, short_s=1.0, burn_rate=4.0),),
    )
    spec.update(slo_overrides)
    engine.add(SLO(**spec))
    return engine


class TestValidation:
    def test_burn_window(self):
        with pytest.raises(ConfigError):
            BurnWindow(long_s=0.0, short_s=1.0, burn_rate=2.0)
        with pytest.raises(ConfigError):
            BurnWindow(long_s=1.0, short_s=2.0, burn_rate=2.0)
        with pytest.raises(ConfigError):
            BurnWindow(long_s=2.0, short_s=1.0, burn_rate=0.0)

    def test_slo(self):
        with pytest.raises(ConfigError):
            SLO(name="x", series="s", objective="eq", threshold=1.0)
        with pytest.raises(ConfigError):
            SLO(name="x", series="s", objective="le", threshold=1.0, budget=0.0)
        with pytest.raises(ConfigError):
            SLO(name="x", series="s", objective="le", threshold=1.0, windows=())

    def test_duplicate_name_rejected(self):
        engine = engine_with([])
        with pytest.raises(ConfigError):
            engine.add(SLO(name="lat-ok", series="other", objective="le", threshold=1.0))

    def test_good_predicate_directions(self):
        le = SLO(name="a", series="s", objective="le", threshold=2.0)
        assert le.good(2.0) and not le.good(2.1)
        ge = SLO(name="b", series="s", objective="ge", threshold=2.0)
        assert ge.good(2.0) and not ge.good(1.9)


class TestBurnMath:
    def test_bad_fraction_over_window(self):
        engine = engine_with([(1.0, 0.5), (2.0, 2.0), (3.0, 0.5), (4.0, 2.0)])
        slo = engine.objectives[0]
        assert engine.bad_fraction(slo, 4.0, 4.0) == 0.5
        assert engine.bad_fraction(slo, 1.0, 4.0) == 1.0  # only the t=4 point

    def test_empty_window_is_none_and_burn_zero(self):
        engine = engine_with([(1.0, 0.5)])
        slo = engine.objectives[0]
        assert engine.bad_fraction(slo, 1.0, 10.0) is None
        assert engine.burn_rate(slo, 1.0, 10.0) == 0.0

    def test_missing_series_is_silent(self):
        engine = SLOEngine(TelemetryPipeline(Simulator()))
        engine.add(SLO(name="x", series="ghost", objective="le", threshold=1.0))
        assert engine.evaluate(10.0) == []

    def test_burn_rate_is_fraction_over_budget(self):
        engine = engine_with([(1.0, 2.0), (2.0, 0.5)])
        slo = engine.objectives[0]
        assert engine.burn_rate(slo, 4.0, 4.0) == pytest.approx(0.5 / 0.1)


class TestAlerting:
    def all_bad(self):
        return [(0.5 * i, 5.0) for i in range(1, 9)]  # t = 0.5 .. 4.0, all bad

    def test_fires_when_both_windows_burn(self):
        engine = engine_with(self.all_bad())
        fired = engine.evaluate(4.0)
        assert len(fired) == 1
        alert = fired[0]
        assert alert.slo == "lat-ok"
        assert alert.severity == "critical"
        assert alert.at == 4.0
        assert alert.burn_long == pytest.approx(10.0)
        assert alert.burn_short == pytest.approx(10.0)
        assert engine.firing() == [("lat-ok", "critical")]

    def test_short_window_gates_the_page(self):
        # Long window burns, but the last second is healthy: no page.
        points = [(0.5 * i, 5.0) for i in range(1, 7)] + [(3.5, 0.5), (4.0, 0.5)]
        engine = engine_with(points)
        assert engine.evaluate(4.0) == []

    def test_latch_and_rearm(self):
        engine = engine_with(self.all_bad())
        assert len(engine.evaluate(4.0)) == 1
        assert engine.evaluate(4.0) == []  # latched: no refire
        pipe = engine.pipeline
        # Heal: the long window fills with good samples, burn < 1.0 ...
        for i in range(1, 9):
            pipe.record("lat", 4.0 + 0.5 * i, 0.5)
        assert engine.evaluate(8.0) == []  # this pass re-arms
        assert engine.firing() == []
        # ... then a second excursion pages again.
        for i in range(1, 9):
            pipe.record("lat", 8.0 + 0.5 * i, 5.0)
        assert len(engine.evaluate(12.0)) == 1
        assert len(engine.alerts) == 2

    def test_one_alert_per_objective_per_pass(self):
        engine = engine_with(self.all_bad(), windows=DEFAULT_WINDOWS)
        fired = engine.evaluate(4.0)
        assert len(fired) == 1  # page wins; the warn window stays quiet
        assert fired[0].severity == "critical"

    def test_to_event_carries_the_alert(self):
        engine = engine_with(self.all_bad(), state="app/state")
        event = engine.evaluate(4.0)[0].to_event()
        assert event.kind == "slo-burning"
        assert event.at == 4.0
        assert event.state == "app/state"
        attrs = dict(event.attrs)
        assert attrs["slo"] == "lat-ok"
        assert attrs["series"] == "lat"
        assert attrs["severity"] == "critical"
        assert attrs["burn_long"] == pytest.approx(10.0)


class TestStatus:
    def test_rows_are_sorted_and_complete(self):
        pipe = pipeline_with([(1.0, 5.0)])
        engine = SLOEngine(pipe)
        engine.add(SLO(name="b", series="lat", objective="le", threshold=1.0))
        engine.add(SLO(name="a", series="lat", objective="ge", threshold=2.0))
        rows = engine.status(1.0)
        assert [r["slo"] for r in rows] == ["a", "b"]
        assert rows[0]["objective"] == ">= 2"
        assert rows[1]["objective"] == "<= 1"
        assert rows[0]["last"] == 5.0
        assert rows[1]["state"] == "ok"
