"""Regression tests: recovery mechanisms under mid-recovery re-failures.

Two fault families, applied to every mechanism:

- **Replacement death**: the node being recovered onto dies while shards
  are still in flight. Each mechanism must fail its handle with the
  uniform, plain :class:`RecoveryError` restart hint — never a raw
  ``NetworkError``/``OverlayError`` internal — so the campaign engine can
  restart the recovery onto a fresh replacement.
- **Provider death**: a replica holder serving the recovery dies
  mid-transfer. The mechanism must retry from an alternate replica and
  complete, or fail with a descriptive shard-loss error once the replica
  set is exhausted.
"""

import pytest

from repro.errors import InsufficientShardsError, RecoveryError
from repro.recovery.line import LineRecovery
from repro.recovery.speculation import SpeculativeStarRecovery
from repro.recovery.star import StarRecovery
from repro.recovery.tree import TreeRecovery
from repro.util.sizes import MB

MECHANISMS = {
    "star": StarRecovery,
    "line": LineRecovery,
    "tree": TreeRecovery,
    "speculation": SpeculativeStarRecovery,
}

# With 100 Mbit links and 32 MB of state, star/line/speculation transfers
# run from ~1.0s (post-detection) for several seconds; tree transfers only
# start after its ~2.4s build window. These crash times land mid-flight.
CRASH_AT = {"star": 2.0, "line": 2.0, "speculation": 2.0, "tree": 4.0}


def build_world(world_factory):
    w = world_factory(num_nodes=32, link_mbit=100)
    registered, _ = w.save_synthetic(size=32 * MB, shards=4, replicas=3)
    return w, registered


@pytest.mark.parametrize("name", sorted(MECHANISMS))
class TestReplacementDeath:
    def test_surfaces_clean_recovery_error(self, world_factory, name):
        w, registered = build_world(world_factory)
        replacement = w.fail_owner()
        handle = w.manager.recover(
            "app/state", replacement=replacement, mechanism=MECHANISMS[name]()
        )
        w.sim.schedule(CRASH_AT[name], w.overlay.fail_node, replacement)
        w.sim.run_until_idle()
        assert handle.done
        with pytest.raises(
            RecoveryError, match="replacement node .* died during"
        ):
            handle.result
        # The uniform restart hint, not an overlay/network internal.
        assert type(handle._error) is RecoveryError
        assert "restart the recovery onto a new replacement" in str(handle._error)


@pytest.mark.parametrize("name", sorted(MECHANISMS))
class TestProviderDeath:
    def test_retry_completes_the_recovery(self, world_factory, name):
        w, registered = build_world(world_factory)
        replacement = w.fail_owner()
        handle = w.manager.recover(
            "app/state", replacement=replacement, mechanism=MECHANISMS[name]()
        )
        provider = next(
            p.node
            for p in registered.plan.providers_for(0)
            if p.node.node_id != replacement.node_id
        )
        w.sim.schedule(CRASH_AT[name], w.overlay.fail_node, provider)
        w.sim.run_until_idle()
        result = handle.result  # raises (descriptively) if the retry failed
        assert result.state_name == "app/state"
        assert result.shards_recovered == 4


class TestReplicaExhaustion:
    def test_losing_every_replica_fails_descriptively(self, world_factory):
        w, registered = build_world(world_factory)
        replacement = w.fail_owner()
        handle = w.manager.recover(
            "app/state", replacement=replacement, mechanism=StarRecovery()
        )
        victims = {
            p.node.node_id: p.node
            for p in registered.plan.providers_for(0)
            if p.node.node_id != replacement.node_id
        }
        for node in victims.values():
            w.sim.schedule(2.0, w.overlay.fail_node, node)
        w.sim.run_until_idle()
        assert handle.done
        with pytest.raises(InsufficientShardsError, match="shard 0"):
            handle.result
