"""Unit tests for byte-size helpers."""

import pytest

from repro.util.sizes import GB, KB, MB, format_bytes, gbit_per_s, mbit_per_s, parse_size


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512.0B"

    def test_kilobytes(self):
        assert format_bytes(2 * KB) == "2.0KB"

    def test_megabytes(self):
        assert format_bytes(1.5 * MB) == "1.5MB"

    def test_gigabytes(self):
        assert format_bytes(3 * GB) == "3.0GB"

    def test_large_stays_gb(self):
        assert format_bytes(4096 * GB).endswith("GB")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("1KB", KB),
            ("64MB", 64 * MB),
            ("64 mb", 64 * MB),
            ("1.5GB", int(1.5 * GB)),
            ("2TB", 2 * 1024 * GB),
            ("0B", 0),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "MB", "12PB", "twelve", "-5MB"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_size(text)

    def test_roundtrip_with_format(self):
        assert parse_size(format_bytes(64 * MB)) == 64 * MB


class TestLinkRates:
    def test_mbit(self):
        assert mbit_per_s(8) == 1_000_000

    def test_gbit(self):
        assert gbit_per_s(1) == 125_000_000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mbit_per_s(-1)
