"""Unit and property tests for the overlay: wiring, routing, repair."""

import math
import random

import pytest

from repro.dht.overlay import Overlay
from repro.errors import OverlayError, RoutingError
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.util.ids import random_node_id


def build_overlay(count, seed=0, leaf_set_size=16):
    sim = Simulator()
    net = Network(sim)
    overlay = Overlay(sim, net, leaf_set_size=leaf_set_size, rng=random.Random(seed))
    overlay.build(count)
    return overlay


class TestBuild:
    def test_node_count(self):
        overlay = build_overlay(50)
        assert len(overlay.nodes) == 50
        assert len(overlay.alive_nodes()) == 50

    def test_empty_build_rejected(self):
        sim = Simulator()
        overlay = Overlay(sim, Network(sim))
        with pytest.raises(OverlayError):
            overlay.build(0)

    def test_unique_ids(self):
        overlay = build_overlay(100)
        assert len({n.node_id for n in overlay.nodes}) == 100

    def test_leaf_sets_full(self):
        overlay = build_overlay(100, leaf_set_size=16)
        assert all(n.leaf_set.is_full() for n in overlay.nodes)

    def test_leaf_sets_contain_true_neighbours(self):
        overlay = build_overlay(60, seed=4, leaf_set_size=8)
        ordered = sorted(overlay.nodes, key=lambda n: n.node_id.value)
        for i, node in enumerate(ordered):
            successor = ordered[(i + 1) % len(ordered)]
            assert node.leaf_set.contains(successor.node_id)

    def test_routing_tables_populated(self):
        overlay = build_overlay(100)
        assert all(n.routing_table.size() > 0 for n in overlay.nodes)

    def test_node_lookup(self):
        overlay = build_overlay(10)
        node = overlay.nodes[3]
        assert overlay.node_for_id(node.node_id) is node
        with pytest.raises(OverlayError):
            overlay.node_for_id(random_node_id(random.Random(999)))


class TestRouting:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_routes_reach_responsible_node(self, seed):
        overlay = build_overlay(150, seed=seed)
        rng = random.Random(seed + 100)
        for _ in range(50):
            start = rng.choice(overlay.nodes)
            key = random_node_id(rng)
            dest, path = overlay.route(start, key)
            assert dest.node_id == overlay.responsible_node(key).node_id
            assert path[0] is start
            assert path[-1] is dest

    def test_hop_count_logarithmic(self):
        overlay = build_overlay(400, seed=5)
        rng = random.Random(7)
        hops = [
            overlay.hops(rng.choice(overlay.nodes), random_node_id(rng))
            for _ in range(100)
        ]
        # Pastry bound: O(log_16 N) ~ 2.2 for N=400; generous headroom.
        assert sum(hops) / len(hops) <= 2 * math.log(400, 16) + 1

    def test_route_to_own_key(self):
        overlay = build_overlay(50, seed=2)
        node = overlay.nodes[0]
        dest, path = overlay.route(node, node.node_id)
        assert dest is node
        assert len(path) == 1

    def test_routing_from_dead_node_rejected(self):
        overlay = build_overlay(20)
        victim = overlay.nodes[0]
        overlay.fail_node(victim)
        with pytest.raises(RoutingError):
            overlay.route(victim, random_node_id(random.Random(1)))

    def test_routing_correct_after_failures(self):
        overlay = build_overlay(150, seed=3)
        rng = random.Random(17)
        for victim in rng.sample(overlay.nodes, 20):
            overlay.fail_node(victim)
        for _ in range(40):
            start = rng.choice(overlay.alive_nodes())
            key = random_node_id(rng)
            dest, _ = overlay.route(start, key)
            assert dest.node_id == overlay.responsible_node(key).node_id


class TestResponsibility:
    def test_responsible_is_globally_closest(self):
        overlay = build_overlay(120, seed=9)
        rng = random.Random(21)
        for _ in range(50):
            key = random_node_id(rng)
            found = overlay.responsible_node(key)
            best = min(
                overlay.alive_nodes(),
                key=lambda n: (key.distance(n.node_id), n.node_id.value),
            )
            assert found.node_id == best.node_id

    def test_responsible_after_failures(self):
        overlay = build_overlay(60, seed=10)
        rng = random.Random(3)
        for victim in rng.sample(overlay.nodes, 15):
            overlay.fail_node(victim)
        for _ in range(30):
            key = random_node_id(rng)
            found = overlay.responsible_node(key)
            best = min(
                overlay.alive_nodes(),
                key=lambda n: (key.distance(n.node_id), n.node_id.value),
            )
            assert found.node_id == best.node_id


class TestFailureRepair:
    def test_failed_node_removed_from_leaf_sets(self):
        overlay = build_overlay(80, seed=6, leaf_set_size=8)
        victim = overlay.nodes[0]
        overlay.fail_node(victim)
        assert all(
            not n.leaf_set.contains(victim.node_id) for n in overlay.alive_nodes()
        )

    def test_leaf_sets_refilled_after_failure(self):
        overlay = build_overlay(80, seed=6, leaf_set_size=8)
        overlay.fail_node(overlay.nodes[0])
        assert all(n.leaf_set.is_full() for n in overlay.alive_nodes())

    def test_repair_generates_control_traffic(self):
        overlay = build_overlay(80, seed=6)
        before = overlay.network.total_control_bytes
        overlay.fail_node(overlay.nodes[0])
        assert overlay.network.total_control_bytes > before
        assert overlay.repairs_performed > 0

    def test_double_failure_is_idempotent(self):
        overlay = build_overlay(30, seed=1)
        victim = overlay.nodes[0]
        overlay.fail_node(victim)
        repairs = overlay.repairs_performed
        overlay.fail_node(victim)
        assert overlay.repairs_performed == repairs

    def test_replacement_is_closest_survivor(self):
        overlay = build_overlay(60, seed=7)
        victim = overlay.nodes[0]
        overlay.fail_node(victim)
        replacement = overlay.replacement_for(victim)
        assert replacement.alive
        best = min(
            overlay.alive_nodes(),
            key=lambda n: (victim.node_id.distance(n.node_id), n.node_id.value),
        )
        assert replacement.node_id == best.node_id

    def test_replacement_requires_failure(self):
        overlay = build_overlay(10)
        with pytest.raises(OverlayError):
            overlay.replacement_for(overlay.nodes[0])


class TestBuildAddNodeParity:
    def test_build_matches_incremental_joins(self):
        """build(N) and build(1) + add_node()*(N-1) wire identical rings.

        Both paths must draw the same node ids (build's rng.choice calls
        happen only after every id is drawn, and build(1) short-circuits
        routing wiring) and produce the same leaf sets per node. The ring
        must be larger than leaf_set_size + 1: on smaller rings build's
        windows legitimately contain wrap-around duplicates that the
        incremental path's nearest-pool rebuild does not.
        """
        n, seed, leaf_set_size = 40, 11, 8

        built = build_overlay(n, seed=seed, leaf_set_size=leaf_set_size)

        sim = Simulator()
        net = Network(sim)
        grown = Overlay(
            sim, net, leaf_set_size=leaf_set_size, rng=random.Random(seed)
        )
        grown.build(1)
        for _ in range(n - 1):
            grown.add_node()

        assert {x.node_id for x in built.nodes} == {x.node_id for x in grown.nodes}
        grown_by_id = {x.node_id: x for x in grown.nodes}
        for node in built.nodes:
            twin = grown_by_id[node.node_id]
            assert [m.node_id for m in node.leaf_set.clockwise()] == [
                m.node_id for m in twin.leaf_set.clockwise()
            ]
            assert [m.node_id for m in node.leaf_set.counter_clockwise()] == [
                m.node_id for m in twin.leaf_set.counter_clockwise()
            ]


class TestMembershipChanges:
    def test_add_node_joins_ring(self):
        overlay = build_overlay(40, seed=8)
        newcomer = overlay.add_node()
        assert newcomer in overlay.nodes
        assert newcomer.leaf_set.members()
        # Routing to the newcomer's id finds it.
        dest, _ = overlay.route(overlay.nodes[0], newcomer.node_id)
        assert dest.node_id == newcomer.node_id

    def test_sample_nodes_excludes(self):
        overlay = build_overlay(30)
        excluded = overlay.nodes[:5]
        sample = overlay.sample_nodes(10, exclude=excluded)
        banned = {n.node_id for n in excluded}
        assert len(sample) == 10
        assert all(n.node_id not in banned for n in sample)

    def test_sample_too_many(self):
        overlay = build_overlay(5)
        with pytest.raises(OverlayError):
            overlay.sample_nodes(10)

    def test_leaf_set_of_refresh(self):
        overlay = build_overlay(40, seed=2)
        node = overlay.nodes[0]
        members = overlay.leaf_set_of(node, refresh=True)
        assert members
        assert all(m.alive for m in members)
