"""Unit and property tests for GF(256) arithmetic and Reed-Solomon codes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ErasureCodingError
from repro.recovery.baselines.erasure.gf256 import (
    GF256,
    mat_invert,
    mat_mul,
    mat_vec_mul,
    vandermonde,
)
from repro.recovery.baselines.erasure.reed_solomon import CodedBlock, ReedSolomonCode

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(elements, elements, elements)
    def test_mul_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(elements)
    def test_multiplicative_identity(self, a):
        assert GF256.mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert GF256.mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert GF256.mul(a, GF256.inverse(a)) == 1

    @given(elements, nonzero)
    def test_div_is_mul_by_inverse(self, a, b):
        assert GF256.div(a, b) == GF256.mul(a, GF256.inverse(b))

    @given(elements)
    def test_add_is_self_inverse(self, a):
        assert GF256.add(a, a) == 0
        assert GF256.sub(a, a) == 0

    @given(nonzero, st.integers(min_value=0, max_value=510))
    def test_pow_matches_repeated_mul(self, a, e):
        expected = 1
        for _ in range(e):
            expected = GF256.mul(expected, a)
        assert GF256.pow(a, e) == expected

    def test_zero_division_rejected(self):
        with pytest.raises(ErasureCodingError):
            GF256.div(1, 0)
        with pytest.raises(ErasureCodingError):
            GF256.inverse(0)


class TestMatrices:
    def test_vandermonde_shape(self):
        m = vandermonde(4, 3)
        assert len(m) == 4 and all(len(row) == 3 for row in m)
        assert all(row[0] == 1 for row in m)

    def test_vandermonde_invalid(self):
        with pytest.raises(ErasureCodingError):
            vandermonde(0, 2)
        with pytest.raises(ErasureCodingError):
            vandermonde(300, 2)

    def test_invert_roundtrip(self):
        rng = random.Random(4)
        for _ in range(10):
            rows = rng.sample(range(20), 5)
            matrix = [vandermonde(20, 5)[r] for r in rows]
            inverse = mat_invert(matrix)
            product = mat_mul(inverse, matrix)
            identity = [[1 if i == j else 0 for j in range(5)] for i in range(5)]
            assert product == identity

    def test_singular_rejected(self):
        singular = [[1, 2], [1, 2]]
        with pytest.raises(ErasureCodingError):
            mat_invert(singular)

    def test_non_square_rejected(self):
        with pytest.raises(ErasureCodingError):
            mat_invert([[1, 2, 3], [4, 5, 6]])

    def test_mat_vec_shape_mismatch(self):
        with pytest.raises(ErasureCodingError):
            mat_vec_mul([[1, 2]], [1, 2, 3])


class TestReedSolomon:
    def test_construction_validation(self):
        with pytest.raises(ErasureCodingError):
            ReedSolomonCode(0, 4)
        with pytest.raises(ErasureCodingError):
            ReedSolomonCode(8, 4)
        with pytest.raises(ErasureCodingError):
            ReedSolomonCode(10, 300)

    def test_paper_code_overhead(self):
        code = ReedSolomonCode(16, 26)
        assert code.storage_overhead == pytest.approx(0.625)
        assert code.max_losses == 10

    def test_split_join_roundtrip(self):
        code = ReedSolomonCode(5, 8)
        data = b"hello world, this is a payload"
        assert code.join(code.split(data)) == data

    def test_split_handles_empty(self):
        code = ReedSolomonCode(3, 5)
        assert code.join(code.split(b"")) == b""

    def test_encode_decode_all_blocks(self):
        code = ReedSolomonCode(4, 7)
        data = bytes(range(256)) * 3
        blocks = code.encode(data)
        assert len(blocks) == 7
        assert code.decode(blocks) == data

    @given(st.binary(min_size=0, max_size=400), st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_any_k_blocks_decode(self, data, rng):
        code = ReedSolomonCode(4, 8)
        blocks = code.encode(data)
        subset = rng.sample(blocks, 4)
        assert code.decode(subset) == data

    def test_tolerates_max_losses(self):
        code = ReedSolomonCode(16, 26)
        data = b"x" * 1000
        blocks = code.encode(data)
        survivors = blocks[10:]  # lose the first 10 (= max_losses)
        assert code.decode(survivors) == data

    def test_too_few_blocks_rejected(self):
        code = ReedSolomonCode(4, 8)
        blocks = code.encode(b"payload")
        with pytest.raises(ErasureCodingError):
            code.decode(blocks[:3])

    def test_duplicate_blocks_do_not_count(self):
        code = ReedSolomonCode(4, 8)
        blocks = code.encode(b"payload")
        with pytest.raises(ErasureCodingError):
            code.decode([blocks[0]] * 4)

    def test_inconsistent_lengths_rejected(self):
        code = ReedSolomonCode(2, 4)
        blocks = code.encode(b"payload")
        broken = [blocks[0], CodedBlock(blocks[1].index, blocks[1].payload + b"x")]
        with pytest.raises(ErasureCodingError):
            code.decode(broken)

    def test_out_of_range_index_rejected(self):
        code = ReedSolomonCode(2, 4)
        blocks = code.encode(b"data")
        bad = [CodedBlock(99, blocks[0].payload), blocks[1]]
        with pytest.raises(ErasureCodingError):
            code.decode(bad)
