"""Unit tests for state stores, snapshots, and version control."""

import pytest

from repro.errors import StateError, VersionConflictError
from repro.state.store import StateSnapshot, StateStore, estimate_entry_bytes
from repro.state.version import StateVersion, VersionClock


class TestVersion:
    def test_total_order(self):
        assert StateVersion(1.0, 1) < StateVersion(1.0, 2)
        assert StateVersion(1.0, 5) < StateVersion(2.0, 1)

    def test_zero(self):
        assert StateVersion.ZERO == StateVersion(0.0, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StateVersion(-1.0, 0)
        with pytest.raises(ValueError):
            StateVersion(0.0, -1)

    def test_clock_monotonic(self):
        clock = VersionClock()
        v1 = clock.next(1.0)
        v2 = clock.next(1.0)
        v3 = clock.next(2.0)
        assert v1 < v2 < v3
        assert clock.current == v3

    def test_clock_rejects_time_travel(self):
        clock = VersionClock()
        clock.next(5.0)
        with pytest.raises(VersionConflictError):
            clock.next(4.0)

    def test_observe_advances(self):
        clock = VersionClock()
        clock.observe(StateVersion(9.0, 3))
        assert clock.current == StateVersion(9.0, 3)
        clock.observe(StateVersion(1.0, 1))  # older: ignored
        assert clock.current == StateVersion(9.0, 3)


class TestStore:
    def test_put_get_delete(self):
        store = StateStore("s")
        store.put("k", 1)
        assert store.get("k") == 1
        assert "k" in store
        assert store.delete("k")
        assert not store.delete("k")
        assert store.get("k", "default") == "default"

    def test_name_required(self):
        with pytest.raises(StateError):
            StateStore("")

    def test_size_accounting_grows_and_shrinks(self):
        store = StateStore("s")
        assert store.size_bytes == 0
        store.put("key", "value")
        first = store.size_bytes
        assert first > 0
        store.put("key2", "value2")
        assert store.size_bytes > first
        store.delete("key2")
        assert store.size_bytes == first

    def test_overwrite_replaces_size(self):
        store = StateStore("s")
        store.put("k", "short")
        small = store.size_bytes
        store.put("k", "a much longer value" * 10)
        assert store.size_bytes > small
        store.put("k", "short")
        assert store.size_bytes == small

    def test_update_read_modify_write(self):
        store = StateStore("s")
        assert store.update("count", lambda c: (c or 0) + 1) == 1
        assert store.update("count", lambda c: (c or 0) + 1) == 2

    def test_clear(self):
        store = StateStore("s")
        store.put("a", 1)
        store.clear()
        assert len(store) == 0
        assert store.size_bytes == 0

    def test_len_and_iteration(self):
        store = StateStore("s")
        for i in range(5):
            store.put(i, i * i)
        assert len(store) == 5
        assert dict(store.items()) == {i: i * i for i in range(5)}
        assert sorted(store.keys()) == list(range(5))


class TestSnapshotRestore:
    def test_snapshot_is_immutable_copy(self):
        store = StateStore("s")
        store.put("k", 1)
        snap = store.snapshot(1.0)
        store.put("k", 2)
        assert snap.get("k") == 1
        assert len(snap) == 1

    def test_snapshot_versions_increase(self):
        store = StateStore("s")
        a = store.snapshot(1.0)
        b = store.snapshot(2.0)
        assert a.version < b.version

    def test_restore_replaces_contents(self):
        store = StateStore("s")
        store.put("a", 1)
        snap = store.snapshot(1.0)
        store.put("b", 2)
        store.restore(snap)
        assert "b" not in store
        assert store.get("a") == 1

    def test_restore_wrong_name_rejected(self):
        store = StateStore("s")
        other = StateStore("other")
        snap = other.snapshot(1.0)
        with pytest.raises(StateError):
            store.restore(snap)

    def test_restore_advances_clock(self):
        store = StateStore("s")
        snap = StateSnapshot("s", {"x": 1}, StateVersion(9.0, 9))
        store.restore(snap)
        assert store.clock.current == StateVersion(9.0, 9)

    def test_snapshot_size_matches_entries(self):
        store = StateStore("s")
        store.put("k", "v")
        snap = store.snapshot(0.0)
        assert snap.size_bytes == estimate_entry_bytes("k", "v")


class TestSizeEstimation:
    @pytest.mark.parametrize(
        "value", ["text", b"bytes", 42, 3.14, [1, 2], {"a": 1}, (1, 2), {1, 2}]
    )
    def test_positive_estimates(self, value):
        assert estimate_entry_bytes("key", value) > 0

    def test_string_scales_with_length(self):
        assert estimate_entry_bytes("k", "x" * 1000) > estimate_entry_bytes("k", "x")
